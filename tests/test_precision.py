"""Float32/float64 parity suite and fused-inference equivalence tests.

PR 4 threads the ``DtypePolicy`` through the whole compute core and adds the
fused no-grad inference path.  These tests pin the contract:

* the float64 path stays the bit-exact reference (vectorized col2im and the
  pooling rewrite are bit-identical to their loop predecessors),
* float32 training tracks the float64 loss curves within tolerance,
* fused inference (BN folding, workspace arena, raw-array kernels) is
  equivalent to the unfused eval-mode autograd forward — exactly, except the
  batch-invariant linear kernels whose summation order differs by <= 1 ulp —
  and bitwise independent of batch composition,
* checkpoints round-trip ``compute_dtype`` without silent upcasts.
"""

from __future__ import annotations

import contextlib

import numpy as np
import pytest

from repro.core.config import AimTSConfig, FineTuneConfig
from repro.core.finetuner import FineTuner
from repro.core.pretrainer import AimTSPretrainer
from repro.data.archives import make_dataset
from repro.encoders import ImageEncoder, TSEncoder
from repro.nn import Workspace
from repro.nn import functional as F
from repro.nn.arena import StepArena, use_arena
from repro.nn.layers import BatchNorm1d, Conv1d
from repro.nn.tensor import Tensor, default_dtype, get_default_dtype, no_grad


def small_config(**overrides) -> AimTSConfig:
    base = dict(
        repr_dim=16,
        proj_dim=8,
        hidden_channels=8,
        depth=2,
        panel_size=24,
        series_length=64,
        n_variables=2,
        batch_size=8,
        epochs=2,
        seed=3407,
    )
    base.update(overrides)
    return AimTSConfig(**base)


@pytest.fixture()
def pool() -> np.ndarray:
    return np.random.default_rng(0).normal(size=(32, 2, 64))


# --------------------------------------------------------------------------- #
# default-dtype scope
# --------------------------------------------------------------------------- #
class TestDefaultDtypeScope:
    def test_scope_restores_on_exit(self):
        assert get_default_dtype() == np.float64
        with default_dtype(np.float32):
            assert get_default_dtype() == np.float32
            assert Tensor([1.0, 2.0]).data.dtype == np.float32
        assert get_default_dtype() == np.float64
        assert Tensor([1.0, 2.0]).data.dtype == np.float64

    def test_scope_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with default_dtype(np.float32):
                raise RuntimeError("boom")
        assert get_default_dtype() == np.float64

    def test_rejects_unsupported_dtypes(self):
        with pytest.raises(ValueError, match="float32 or float64"):
            with default_dtype(np.int64):
                pass  # pragma: no cover

    def test_gradients_follow_parameter_dtype(self):
        with default_dtype(np.float32):
            x = Tensor(np.ones((3, 4)), requires_grad=True)
            loss = (x * x).sum()
            loss.backward()
        assert x.data.dtype == np.float32
        assert x.grad.dtype == np.float32


# --------------------------------------------------------------------------- #
# vectorized kernels vs their loop references
# --------------------------------------------------------------------------- #
class TestVectorizedKernels:
    @pytest.mark.parametrize(
        "shape,kernel,stride,dilation",
        [
            ((2, 3, 17), 3, 1, 1),
            ((2, 3, 33), 3, 2, 2),
            ((1, 2, 40), 5, 3, 1),
            ((3, 1, 96), 3, 1, 4),
        ],
    )
    def test_col2im_1d_bit_identical(self, shape, kernel, stride, dilation):
        batch, channels, length = shape
        span = (kernel - 1) * dilation + 1
        out_t = (length - span) // stride + 1
        cols = np.random.default_rng(1).normal(size=(batch, out_t, channels * kernel))
        fast = F._col2im_1d(cols, shape, kernel, stride, dilation)
        reference = F._col2im_1d_reference(cols, shape, kernel, stride, dilation)
        assert np.array_equal(fast, reference)

    @pytest.mark.parametrize(
        "shape,kernel,stride",
        [((2, 3, 9, 9), 3, 1), ((2, 3, 16, 16), 3, 2), ((1, 2, 12, 12), 4, 3)],
    )
    def test_col2im_2d_bit_identical(self, shape, kernel, stride):
        batch, channels, height, width = shape
        out_h = (height - kernel) // stride + 1
        out_w = (width - kernel) // stride + 1
        cols = np.random.default_rng(2).normal(
            size=(batch, out_h, out_w, channels * kernel * kernel)
        )
        fast = F._col2im_2d(cols, shape, (kernel, kernel), (stride, stride))
        reference = F._col2im_2d_reference(cols, shape, (kernel, kernel), (stride, stride))
        assert np.array_equal(fast, reference)

    def test_col2im_1d_float32_round_trips_dtype(self):
        cols = np.random.default_rng(3).normal(size=(2, 15, 6)).astype(np.float32)
        out = F._col2im_1d(cols, (2, 2, 17), 3, 1, 1)
        assert out.dtype == np.float32

    @pytest.mark.parametrize("length,output_size", [(96, 4), (96, 5), (100, 7), (64, 64)])
    def test_adaptive_avg_pool1d_matches_slice_concat_path(self, length, output_size):
        x = Tensor(np.random.default_rng(4).normal(size=(3, 5, length)), requires_grad=True)
        out = F.adaptive_avg_pool1d(x, output_size)

        reference_x = Tensor(x.data.copy(), requires_grad=True)
        edges = np.linspace(0, length, output_size + 1).astype(int)
        pieces = [
            reference_x[:, :, start:stop].mean(axis=2, keepdims=True)
            for start, stop in zip(edges[:-1], edges[1:])
        ]
        reference = Tensor.concat(pieces, axis=2)

        assert np.array_equal(out.data, reference.data)
        grad = np.random.default_rng(5).normal(size=out.shape)
        out.backward(grad)
        reference.backward(grad)
        assert np.array_equal(x.grad, reference_x.grad)

    @pytest.mark.parametrize("size,output_size", [(24, 3), (32, 4), (33, 4)])
    def test_adaptive_avg_pool2d_matches_slice_concat_path(self, size, output_size):
        x = Tensor(np.random.default_rng(6).normal(size=(2, 4, size, size)), requires_grad=True)
        out = F.adaptive_avg_pool2d(x, output_size)

        reference_x = Tensor(x.data.copy(), requires_grad=True)
        edges = np.linspace(0, size, output_size + 1).astype(int)
        rows = []
        for h0, h1 in zip(edges[:-1], edges[1:]):
            cells = [
                reference_x[:, :, h0:h1, w0:w1].mean(axis=(2, 3), keepdims=True)
                for w0, w1 in zip(edges[:-1], edges[1:])
            ]
            rows.append(Tensor.concat(cells, axis=3))
        reference = Tensor.concat(rows, axis=2)

        assert np.array_equal(out.data, reference.data)
        grad = np.random.default_rng(7).normal(size=out.shape)
        out.backward(grad)
        reference.backward(grad)
        assert np.array_equal(x.grad, reference_x.grad)


# --------------------------------------------------------------------------- #
# float32 vs float64 training parity
# --------------------------------------------------------------------------- #
class TestTrainingDtypeParity:
    def test_pretrain_curves_agree_across_dtypes(self, pool):
        h64 = AimTSPretrainer(small_config()).fit(pool)
        h32 = AimTSPretrainer(
            small_config(compute_dtype="float32", image_dtype="float32")
        ).fit(pool)
        assert np.allclose(h64.total_loss, h32.total_loss, rtol=1e-3, atol=1e-3)
        assert np.allclose(h64.prototype_loss, h32.prototype_loss, rtol=1e-3, atol=1e-3)
        assert np.allclose(h64.series_image_loss, h32.series_image_loss, rtol=1e-3, atol=1e-3)

    def test_float32_pretrain_keeps_float32_everywhere(self, pool):
        pretrainer = AimTSPretrainer(small_config(compute_dtype="float32"))
        pretrainer.fit(pool)
        for name, param in pretrainer.ts_encoder.named_parameters():
            assert param.data.dtype == np.float32, name
        for moment in pretrainer.trainer.optimizer._m:
            assert moment.dtype == np.float32
        assert pretrainer.encode(pool[:4]).dtype == np.float32
        assert get_default_dtype() == np.float64  # scope did not leak

    def test_finetune_curves_agree_across_dtypes(self):
        dataset = make_dataset(
            "parity", "ecg", n_classes=2, n_train=32, n_test=16, length=64, n_variables=1, seed=0
        )
        curves = {}
        predictions = {}
        for dtype in (np.float64, np.float32):
            with default_dtype(dtype):
                encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=1, rng=7)
            finetuner = FineTuner(
                encoder, dataset.n_classes, FineTuneConfig(epochs=5, batch_size=8, seed=3407)
            )
            curves[dtype] = list(finetuner.fit(dataset.train))
            predictions[dtype] = finetuner.predict(dataset.test.X)
        assert np.allclose(curves[np.float64], curves[np.float32], rtol=1e-3, atol=1e-3)
        assert (predictions[np.float64] == predictions[np.float32]).mean() >= 0.9


# --------------------------------------------------------------------------- #
# fused no-grad inference
# --------------------------------------------------------------------------- #
class TestFusedInference:
    # Since the serving PR, the fused path computes 2-D linear layers row by
    # row so a sample's result is independent of its batch (required for
    # micro-batched serving to be bit-identical to direct predict).  The
    # autograd forward keeps the full-batch gemm, whose kernel choice depends
    # on the row count, so fused-vs-unfused equivalence is exact arithmetic
    # up to the linear layers' summation order (<= 1 ulp); batch-INVARIANCE
    # of the fused path itself is asserted bitwise.
    def test_encode_fused_matches_unfused(self, pool):
        pretrainer = AimTSPretrainer(small_config())
        pretrainer.fit(pool)
        X = np.random.default_rng(8).normal(size=(20, 2, 64))
        np.testing.assert_allclose(
            pretrainer.encode(X), pretrainer.encode(X, fused=False),
            rtol=1e-12, atol=1e-14,
        )

    def test_fused_encode_is_batch_invariant(self, pool):
        pretrainer = AimTSPretrainer(small_config())
        pretrainer.fit(pool)
        X = np.random.default_rng(8).normal(size=(20, 2, 64))
        full = pretrainer.encode(X)
        for start, stop in ((0, 1), (3, 7), (10, 20)):
            sub = pretrainer.encode(X[start:stop])
            np.testing.assert_array_equal(sub, full[start:stop])

    def test_predict_logits_fused_matches_unfused(self):
        dataset = make_dataset(
            "fused", "motion", n_classes=3, n_train=24, n_test=12, length=48, n_variables=2, seed=1
        )
        finetuner = FineTuner(
            TSEncoder(hidden_channels=8, repr_dim=16, depth=2, rng=3),
            dataset.n_classes,
            FineTuneConfig(epochs=2, batch_size=8, seed=3407),
        )
        finetuner.fit(dataset.train)
        fused = finetuner.predict_logits(dataset.test.X)
        unfused = finetuner.predict_logits(dataset.test.X, fused=False)
        np.testing.assert_allclose(fused, unfused, rtol=1e-12, atol=1e-14)
        # the serving guarantee: per-sample logits independent of batching
        for start, stop in ((0, 1), (2, 5), (5, 12)):
            sub = finetuner.predict_logits(dataset.test.X[start:stop])
            np.testing.assert_array_equal(sub, fused[start:stop])

    def test_bn_folding_matches_unfused_eval_forward(self):
        rng = np.random.default_rng(9)
        encoder = ImageEncoder(repr_dim=16, base_channels=8, depth=2, rng=11)
        images = rng.normal(size=(6, 3, 24, 24))
        for _ in range(3):  # move the BN running stats away from init
            encoder(images + rng.normal(size=images.shape))
        encoder.eval()
        with no_grad():
            reference = encoder(Tensor(images)).data
        encoder.train(True)
        fused = encoder.infer(images)
        np.testing.assert_allclose(fused, reference, rtol=1e-10, atol=1e-12)

    def test_workspace_reuses_buffers_across_calls(self, pool):
        pretrainer = AimTSPretrainer(small_config())
        X = np.random.default_rng(10).normal(size=(16, 2, 64))
        pretrainer.encode(X, batch_size=8)
        misses = pretrainer._workspace.misses
        assert misses > 0
        pretrainer.encode(X, batch_size=8)
        assert pretrainer._workspace.misses == misses  # steady state allocates nothing
        assert pretrainer._workspace.hits > 0

    def test_workspace_steady_state_with_partial_tail_batch(self):
        # 10 % 4 != 0: the smaller tail micro-batch gets its own buffers
        # (keyed by shape) instead of thrashing the full-batch ones
        pretrainer = AimTSPretrainer(small_config())
        X = np.random.default_rng(13).normal(size=(10, 2, 64))
        pretrainer.encode(X, batch_size=4)
        misses = pretrainer._workspace.misses
        pretrainer.encode(X, batch_size=4)
        assert pretrainer._workspace.misses == misses

    def test_encode_batch_size_comes_from_config_and_is_resolution_invariant(self, pool):
        pretrainer = AimTSPretrainer(small_config(encode_batch_size=4))
        X = np.random.default_rng(11).normal(size=(10, 2, 64))
        assert np.array_equal(pretrainer.encode(X), pretrainer.encode(X, batch_size=10))

    def test_workspace_clear_and_nbytes(self):
        workspace = Workspace()
        buffer = workspace.buffer("tag", (4, 4), np.float32)
        assert workspace.nbytes() == buffer.nbytes
        workspace.clear()
        assert workspace.nbytes() == 0


# --------------------------------------------------------------------------- #
# PR 10: fused training kernels + step arena vs the decomposed reference
# --------------------------------------------------------------------------- #
def _arena_scope(arena: bool):
    """A fresh pooled scope, or the allocate-fresh no-op."""
    return use_arena(StepArena()) if arena else contextlib.nullcontext()


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize("arena", [False, True], ids=["alloc", "arena"])
class TestFusedTrainingKernels:
    """Every fused / in-place training kernel is bit-identical to the
    decomposed closure reference — outputs AND gradients, both dtypes, with
    the step arena on and off.  ``np.array_equal`` throughout: pooling and
    fusion must not change a single bit (the pooled buffers replicate the
    allocate-fresh memory layouts so reduction orders are unchanged)."""

    def test_conv1d_fused_relu(self, dtype, arena):
        rng = np.random.default_rng(21)
        x = rng.normal(size=(4, 3, 32))
        grad = rng.normal(size=(4, 5, 32)).astype(dtype)
        results = {}
        for fused in (True, False):
            with default_dtype(dtype):
                conv = Conv1d(3, 5, 3, padding=2, dilation=2, rng=13)
                inp = Tensor(x, requires_grad=True)
                with _arena_scope(arena):
                    out = conv(inp, relu=True) if fused else conv(inp).relu()
                    out.backward(grad)
            results[fused] = (
                out.data.copy(),
                inp.grad.copy(),
                conv.weight.grad.copy(),
                conv.bias.grad.copy(),
            )
        for fused_side, reference_side in zip(results[True], results[False]):
            assert np.array_equal(fused_side, reference_side)

    def test_add_relu(self, dtype, arena):
        rng = np.random.default_rng(22)
        a = rng.normal(size=(4, 6, 16))
        b = rng.normal(size=(4, 6, 16))
        grad = rng.normal(size=(4, 6, 16)).astype(dtype)
        results = {}
        for fused in (True, False):
            with default_dtype(dtype):
                left = Tensor(a, requires_grad=True)
                right = Tensor(b, requires_grad=True)
                with _arena_scope(arena):
                    out = left.add_relu(right) if fused else (left + right).relu()
                    out.backward(grad)
            results[fused] = (out.data.copy(), left.grad.copy(), right.grad.copy())
        for fused_side, reference_side in zip(results[True], results[False]):
            assert np.array_equal(fused_side, reference_side)

    def test_batch_norm_train(self, dtype, arena):
        rng = np.random.default_rng(23)
        x = rng.normal(size=(4, 6, 16))
        grad = rng.normal(size=(4, 6, 16)).astype(dtype)
        scale = rng.normal(size=6)
        shift = rng.normal(size=6)
        results = {}
        for fused in (True, False):
            with default_dtype(dtype):
                bn = BatchNorm1d(6)
                bn.fused = fused
                bn.weight.data[:] = scale
                bn.bias.data[:] = shift
                inp = Tensor(x, requires_grad=True)
                with _arena_scope(arena):
                    out = bn(inp)
                    out.backward(grad)
            results[fused] = (
                out.data.copy(),
                inp.grad.copy(),
                bn.weight.grad.copy(),
                bn.bias.grad.copy(),
                bn.running_mean.copy(),
                bn.running_var.copy(),
            )
        for fused_side, reference_side in zip(results[True], results[False]):
            assert np.array_equal(fused_side, reference_side)

    def test_ts_encoder_fused_graph(self, dtype, arena):
        rng = np.random.default_rng(24)
        x = rng.normal(size=(4, 2, 64))
        results = {}
        for fused in (True, False):
            with default_dtype(dtype):
                encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=2, rng=5)
                for module in encoder.modules():
                    if hasattr(module, "fused"):
                        module.fused = fused
                with _arena_scope(arena):
                    out = encoder(Tensor(x))
                    (out * out).sum().backward()
            results[fused] = (
                out.data.copy(),
                {n: p.grad.copy() for n, p in encoder.named_parameters() if p.grad is not None},
            )
        assert np.array_equal(results[True][0], results[False][0])
        assert results[True][1].keys() == results[False][1].keys()
        for name, reference_grad in results[False][1].items():
            assert np.array_equal(results[True][1][name], reference_grad), name

    def test_image_encoder_fused_graph(self, dtype, arena):
        rng = np.random.default_rng(25)
        images = rng.normal(size=(4, 3, 24, 24))
        results = {}
        for fused in (True, False):
            with default_dtype(dtype):
                encoder = ImageEncoder(repr_dim=16, base_channels=8, depth=2, rng=11)
                for module in encoder.modules():
                    if hasattr(module, "fused"):
                        module.fused = fused
                with _arena_scope(arena):
                    out = encoder(Tensor(images))
                    (out * out).sum().backward()
            results[fused] = (
                out.data.copy(),
                {n: p.grad.copy() for n, p in encoder.named_parameters() if p.grad is not None},
                {n: v.copy() for n, v in encoder.state_dict().items()},
            )
        assert np.array_equal(results[True][0], results[False][0])
        for name, reference_grad in results[False][1].items():
            assert np.array_equal(results[True][1][name], reference_grad), name
        # BN running statistics advanced identically through the fused node
        for name, reference_state in results[False][2].items():
            assert np.array_equal(results[True][2][name], reference_state), name


class TestStepArenaCurveParity:
    """Composition-level contract of ISSUE 10: full pre-training curves are
    bit-identical with the step arena on and off — the pooled buffers must
    replicate the exact layouts (and therefore reduction orders) the
    allocate-fresh graph produces, conv transpose views included."""

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_pretrain_curves_bit_identical_arena_on_off(self, dtype, pool):
        histories = {}
        for step_arena in (True, False):
            config = small_config(
                compute_dtype=dtype, image_dtype=dtype, step_arena=step_arena
            )
            histories[step_arena] = AimTSPretrainer(config).fit(pool)
        for metric in ("total_loss", "prototype_loss", "series_image_loss"):
            on = getattr(histories[True], metric)
            off = getattr(histories[False], metric)
            assert on == off, metric  # exact float equality, not allclose


# --------------------------------------------------------------------------- #
# checkpoint round trips
# --------------------------------------------------------------------------- #
class TestCheckpointDtypeFidelity:
    def test_save_load_preserves_compute_dtype(self, pool, tmp_path):
        from repro.api import load_estimator, make_estimator

        model = make_estimator(
            "aimts", config=small_config(compute_dtype="float32", image_dtype="float32")
        )
        model.pretrain(pool)
        path = model.save(tmp_path / "model32")
        restored = load_estimator(path)
        assert restored.config.compute_dtype == "float32"
        for name, param in restored.pretrainer.ts_encoder.named_parameters():
            assert param.data.dtype == np.float32, name
        X = np.random.default_rng(12).normal(size=(8, 2, 64))
        assert np.array_equal(restored.encode(X), model.encode(X))
        assert restored.encode(X).dtype == np.float32

    def test_float32_finetuned_bundle_round_trips_predictions(self, pool, tmp_path):
        from repro.api import load_estimator, make_estimator

        dataset = make_dataset(
            "bundle32", "ecg", n_classes=2, n_train=24, n_test=12, length=64, n_variables=2, seed=2
        )
        model = make_estimator("aimts", config=small_config(compute_dtype="float32"))
        model.pretrain(pool)
        model.fine_tune(dataset, FineTuneConfig(epochs=2, batch_size=8, seed=3407))
        path = model.save(tmp_path / "finetuned32")
        restored = load_estimator(path)
        assert np.array_equal(restored.predict(dataset.test.X), model.predict(dataset.test.X))
        proba = restored.predict_proba(dataset.test.X)
        assert np.array_equal(proba.argmax(axis=1), restored.predict(dataset.test.X))
