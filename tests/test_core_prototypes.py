"""Tests for prototype aggregation, view distances and adaptive temperatures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.prototypes import adaptive_temperatures, aggregate_prototype, pairwise_view_distances
from repro.nn.tensor import Tensor


class TestAggregatePrototype:
    def test_mean_aggregation(self, rng):
        views = Tensor(rng.normal(size=(5, 3, 8)), requires_grad=True)
        prototype = aggregate_prototype(views, "mean")
        assert prototype.shape == (3, 8)
        np.testing.assert_allclose(prototype.data, views.data.mean(axis=0))

    def test_mean_gradient_flows(self, rng):
        views = Tensor(rng.normal(size=(4, 2, 6)), requires_grad=True)
        aggregate_prototype(views).sum().backward()
        np.testing.assert_allclose(views.grad, np.full((4, 2, 6), 0.25))

    def test_median_aggregation_value(self, rng):
        views = Tensor(rng.normal(size=(5, 3, 8)))
        prototype = aggregate_prototype(views, "median")
        np.testing.assert_allclose(prototype.data, np.median(views.data, axis=0))

    def test_rejects_bad_shape_and_reduction(self, rng):
        with pytest.raises(ValueError):
            aggregate_prototype(Tensor(rng.normal(size=(3, 8))))
        with pytest.raises(ValueError):
            aggregate_prototype(Tensor(rng.normal(size=(2, 3, 8))), "max")

    def test_prototype_dampens_single_outlier_view(self, rng):
        # one corrupted view out of G=5 shifts the prototype by only ~1/5
        base = rng.normal(size=(1, 4))
        views = np.repeat(base[None, :, :], 5, axis=0)
        corrupted = views.copy()
        corrupted[0] += 5.0
        clean_prototype = aggregate_prototype(Tensor(views)).data
        corrupted_prototype = aggregate_prototype(Tensor(corrupted)).data
        shift = np.abs(corrupted_prototype - clean_prototype).max()
        assert shift == pytest.approx(1.0, rel=1e-6)  # 5.0 / G


class TestPairwiseViewDistances:
    def test_shape_and_symmetry(self, rng):
        views = rng.normal(size=(4, 3, 2, 20))
        distances = pairwise_view_distances(views)
        assert distances.shape == (3, 4, 4)
        np.testing.assert_allclose(distances, distances.transpose(0, 2, 1), atol=1e-12)

    def test_zero_diagonal(self, rng):
        views = rng.normal(size=(3, 2, 1, 10))
        distances = pairwise_view_distances(views)
        for i in range(2):
            np.testing.assert_allclose(np.diag(distances[i]), 0.0, atol=1e-12)

    def test_scales_with_actual_distance(self):
        views = np.zeros((2, 1, 1, 10))
        views[1] += 3.0
        distances = pairwise_view_distances(views)
        assert distances[0, 0, 1] == pytest.approx(3.0)

    def test_length_normalisation(self, rng):
        short = np.stack([np.zeros((1, 1, 10)), np.ones((1, 1, 10))])
        long = np.stack([np.zeros((1, 1, 1000)), np.ones((1, 1, 1000))])
        d_short = pairwise_view_distances(short)[0, 0, 1]
        d_long = pairwise_view_distances(long)[0, 0, 1]
        assert d_short == pytest.approx(d_long)

    def test_rejects_mismatched_shapes(self, rng):
        with pytest.raises(ValueError):
            pairwise_view_distances(rng.normal(size=(2, 1, 1, 10)), rng.normal(size=(3, 1, 1, 10)))
        with pytest.raises(ValueError):
            pairwise_view_distances(rng.normal(size=(2, 1, 10)))


class TestAdaptiveTemperatures:
    def test_shape_and_bounds(self, rng):
        distances = np.abs(rng.normal(size=(3, 5, 5)))
        temperatures = adaptive_temperatures(distances, tau0=0.2)
        assert temperatures.shape == (3, 5, 5)
        assert np.all(temperatures >= 0.2 - 1e-12)
        assert np.all(temperatures <= 1.2 + 1e-12)

    def test_diagonal_equals_tau0(self, rng):
        distances = np.abs(rng.normal(size=(2, 4, 4)))
        temperatures = adaptive_temperatures(distances, tau0=0.3)
        for b in range(2):
            np.testing.assert_allclose(np.diag(temperatures[b]), 0.3, atol=1e-12)

    def test_larger_distance_gets_larger_temperature(self):
        # paper: views that are far apart get a higher temperature
        distances = np.array([[[0.0, 1.0, 5.0], [1.0, 0.0, 1.0], [5.0, 1.0, 0.0]]])
        temperatures = adaptive_temperatures(distances, tau0=0.2)
        assert temperatures[0, 0, 2] > temperatures[0, 0, 1]

    def test_off_diagonal_softmax_sums_to_one(self, rng):
        distances = np.abs(rng.normal(size=(1, 4, 4)))
        temperatures = adaptive_temperatures(distances, tau0=0.2)
        off_diagonal_sum = (temperatures[0] - 0.2).sum(axis=1)
        np.testing.assert_allclose(off_diagonal_sum, np.ones(4), atol=1e-9)

    def test_fixed_mode_is_constant(self, rng):
        distances = np.abs(rng.normal(size=(2, 3, 3)))
        temperatures = adaptive_temperatures(distances, tau0=0.25, mode="fixed")
        np.testing.assert_allclose(temperatures, 0.25)

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            adaptive_temperatures(np.zeros((2, 3, 4)))
        with pytest.raises(ValueError):
            adaptive_temperatures(np.zeros((2, 3, 3)), tau0=-1.0)
        with pytest.raises(ValueError):
            adaptive_temperatures(np.zeros((2, 3, 3)), mode="weird")
