"""Tests for optimizers, schedulers and checkpoint serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.module import Parameter
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.nn.tensor import Tensor


def _quadratic_minimise(optimizer_factory, steps=200):
    """Minimise ||w - target||^2 and return the final distance to the optimum."""
    target = np.array([1.0, -2.0, 3.0])
    weight = Parameter(np.zeros(3))
    optimizer = optimizer_factory([weight])
    for _ in range(steps):
        optimizer.zero_grad()
        loss = ((weight - Tensor(target)) ** 2).sum()
        loss.backward()
        optimizer.step()
    return float(np.abs(weight.data - target).max())


class TestOptimizers:
    def test_sgd_converges(self):
        assert _quadratic_minimise(lambda p: nn.SGD(p, lr=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert _quadratic_minimise(lambda p: nn.SGD(p, lr=0.05, momentum=0.9)) < 1e-3

    def test_adam_converges(self):
        assert _quadratic_minimise(lambda p: nn.Adam(p, lr=0.1)) < 1e-2

    def test_adamw_converges(self):
        assert _quadratic_minimise(lambda p: nn.AdamW(p, lr=0.1, weight_decay=0.01)) < 0.1

    def test_weight_decay_shrinks_weights(self):
        weight = Parameter(np.array([10.0]))
        optimizer = nn.SGD([weight], lr=0.1, weight_decay=0.5)
        for _ in range(20):
            optimizer.zero_grad()
            (weight * 0.0).sum().backward()
            optimizer.step()
        assert abs(weight.data[0]) < 10.0

    def test_optimizer_skips_parameters_without_grad(self):
        weight = Parameter(np.array([1.0]))
        optimizer = nn.Adam([weight], lr=0.1)
        optimizer.step()  # no grad yet; should be a no-op
        assert weight.data[0] == pytest.approx(1.0)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)

    def test_negative_learning_rate_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([Parameter(np.zeros(1))], lr=-0.1)

    def test_adamw_decouples_decay(self):
        # After one step with zero gradient, AdamW still shrinks the weight.
        weight = Parameter(np.array([2.0]))
        optimizer = nn.AdamW([weight], lr=0.1, weight_decay=0.1)
        optimizer.zero_grad()
        (weight * 0.0).sum().backward()
        optimizer.step()
        assert weight.data[0] < 2.0

    def test_training_reduces_classification_loss(self, rng):
        X = rng.normal(size=(32, 6))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        model = nn.MLP(6, [12], 2, rng=0)
        optimizer = nn.Adam(model.parameters(), lr=0.02)
        first = None
        for _ in range(60):
            optimizer.zero_grad()
            loss = F.cross_entropy(model(Tensor(X)), y)
            if first is None:
                first = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first * 0.5


class TestSchedulers:
    def test_steplr_halves_lr(self):
        optimizer = nn.SGD([Parameter(np.zeros(1))], lr=1.0)
        scheduler = nn.StepLR(optimizer, step_size=2, gamma=0.5)
        lrs = [scheduler.step() for _ in range(4)]
        assert lrs == [1.0, 0.5, 0.5, 0.25]

    def test_steplr_rejects_bad_step(self):
        optimizer = nn.SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            nn.StepLR(optimizer, step_size=0)

    def test_cosine_schedule_decreases_to_eta_min(self):
        optimizer = nn.SGD([Parameter(np.zeros(1))], lr=1.0)
        scheduler = nn.CosineAnnealingLR(optimizer, t_max=10, eta_min=0.1)
        values = [scheduler.step() for _ in range(10)]
        assert values[0] > values[-1]
        assert values[-1] == pytest.approx(0.1, abs=1e-9)

    def test_scheduler_updates_optimizer_lr(self):
        optimizer = nn.SGD([Parameter(np.zeros(1))], lr=1.0)
        scheduler = nn.StepLR(optimizer, step_size=1, gamma=0.1)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.1)


class TestSerialization:
    def test_save_and_load_roundtrip(self, tmp_path):
        model = nn.Sequential(nn.Linear(3, 4, rng=0), nn.BatchNorm1d(4))
        path = save_state_dict(model, tmp_path / "checkpoint")
        assert path.endswith(".npz")
        clone = nn.Sequential(nn.Linear(3, 4, rng=1), nn.BatchNorm1d(4))
        load_state_dict(path, clone)
        np.testing.assert_array_equal(
            clone.state_dict()["0.weight"], model.state_dict()["0.weight"]
        )

    def test_load_returns_raw_state(self, tmp_path):
        model = nn.Linear(2, 2, rng=0)
        path = save_state_dict(model, tmp_path / "linear.npz")
        state = load_state_dict(path)
        assert set(state) == {"weight", "bias"}

    def test_npz_suffix_check_is_case_insensitive(self, tmp_path):
        model = nn.Linear(2, 2, rng=0)
        path = save_state_dict(model, tmp_path / "upper.NPZ")
        assert path.endswith("upper.NPZ"), "pre-suffixed paths must not be double-appended"
        assert set(load_state_dict(path)) == {"weight", "bias"}

    def test_float32_state_round_trips_without_upcast(self, tmp_path):
        """A float32 checkpoint loaded into a float64 module stays float32."""
        model = nn.Linear(3, 2, rng=0)
        state32 = {key: value.astype(np.float32) for key, value in model.state_dict().items()}
        path = save_state_dict(state32, tmp_path / "half")
        clone = nn.Linear(3, 2, rng=1)
        load_state_dict(path, clone)
        for _, param in clone.named_parameters():
            assert param.data.dtype == np.float32
        np.testing.assert_array_equal(clone.state_dict()["weight"], state32["weight"])

    def test_non_floating_state_rejected(self):
        layer = nn.Linear(2, 2, rng=0)
        bad = {key: np.zeros_like(value, dtype=np.int64) for key, value in layer.state_dict().items()}
        with pytest.raises(TypeError, match="dtype mismatch"):
            layer.load_state_dict(bad)
