"""Property-based tests (hypothesis) for the autograd Tensor."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import functional as F
from repro.nn.tensor import Tensor

finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False, width=64)


def small_arrays(max_dims=3, max_side=5):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=finite_floats,
    )


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_addition_is_commutative(x):
    a = Tensor(x)
    b = Tensor(x * 0.5 + 1.0)
    np.testing.assert_allclose((a + b).data, (b + a).data, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_double_negation_is_identity(x):
    np.testing.assert_allclose((-(-Tensor(x))).data, x, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_gradient_is_all_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x), atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_mean_matches_numpy(x):
    assert np.isclose(Tensor(x).mean().item(), x.mean(), atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_relu_is_nonnegative_and_idempotent(x):
    out = Tensor(x).relu()
    assert np.all(out.data >= 0)
    np.testing.assert_allclose(out.relu().data, out.data, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_exp_log_roundtrip(x):
    t = Tensor(np.abs(x) + 0.1)
    np.testing.assert_allclose(t.log().exp().data, t.data, rtol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_reshape_preserves_values(x):
    flat = Tensor(x).reshape(-1)
    np.testing.assert_allclose(np.sort(flat.data), np.sort(x.reshape(-1)), atol=0)


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=2))
def test_softmax_rows_are_probability_vectors(x):
    if x.ndim == 1:
        x = x[None, :]
    probs = F.softmax(Tensor(x), axis=-1).data
    assert np.all(probs >= 0)
    np.testing.assert_allclose(probs.sum(axis=-1), np.ones(probs.shape[0]), atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=2))
def test_l2_normalize_produces_unit_or_zero_rows(x):
    if x.ndim == 1:
        x = x[None, :]
    norms = np.linalg.norm(F.l2_normalize(Tensor(x), axis=-1).data, axis=-1)
    assert np.all((norms < 1.0 + 1e-6))


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, shape=(4, 6), elements=finite_floats),
    arrays(np.float64, shape=(6, 3), elements=finite_floats),
)
def test_matmul_matches_numpy(a, b):
    np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, shape=(3, 8), elements=finite_floats))
def test_chained_ops_gradient_shape_matches_input(x):
    t = Tensor(x, requires_grad=True)
    ((t * 2 + 1).relu().sum()).backward()
    assert t.grad.shape == x.shape
