"""Tests for the TS encoder, image encoder, projection and classifier heads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.encoders import ClassifierHead, ImageEncoder, ProjectionHead, TSEncoder
from repro.nn import Adam
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestTSEncoder:
    def test_output_shape_univariate(self, rng):
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=2, rng=0)
        out = encoder(rng.normal(size=(4, 1, 50)))
        assert out.shape == (4, 16)

    def test_output_shape_multivariate_channel_independent(self, rng):
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=2, channel_independent=True, rng=0)
        out = encoder(rng.normal(size=(4, 3, 50)))
        assert out.shape == (4, 16)

    def test_channel_dependent_requires_matching_channels(self, rng):
        encoder = TSEncoder(in_channels=3, hidden_channels=8, repr_dim=16, channel_independent=False, rng=0)
        assert encoder(rng.normal(size=(4, 3, 50))).shape == (4, 16)
        with pytest.raises(ValueError):
            encoder(rng.normal(size=(4, 2, 50)))

    def test_channel_independent_transfers_across_dimensionalities(self, rng):
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, rng=0)
        assert encoder(rng.normal(size=(2, 1, 40))).shape == (2, 16)
        assert encoder(rng.normal(size=(2, 5, 40))).shape == (2, 16)

    def test_variable_length_inputs(self, rng):
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, rng=0)
        assert encoder(rng.normal(size=(2, 1, 32))).shape == (2, 16)
        assert encoder(rng.normal(size=(2, 1, 100))).shape == (2, 16)

    def test_2d_input_treated_as_univariate(self, rng):
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, rng=0)
        assert encoder(rng.normal(size=(3, 40))).shape == (3, 16)

    def test_rejects_4d_input(self, rng):
        encoder = TSEncoder(rng=0)
        with pytest.raises(ValueError):
            encoder(rng.normal(size=(2, 1, 1, 40)))

    def test_gradients_reach_all_parameters(self, rng):
        encoder = TSEncoder(hidden_channels=8, repr_dim=8, depth=2, rng=0)
        out = encoder(rng.normal(size=(3, 2, 30)))
        (out * out).sum().backward()
        for name, parameter in encoder.named_parameters():
            assert parameter.grad is not None, f"no gradient for {name}"

    def test_deterministic_given_seed(self, rng):
        x = rng.normal(size=(2, 1, 30))
        a = TSEncoder(hidden_channels=8, repr_dim=8, rng=7)(x).data
        b = TSEncoder(hidden_channels=8, repr_dim=8, rng=7)(x).data
        np.testing.assert_array_equal(a, b)


class TestImageEncoder:
    def test_output_shape(self, rng):
        encoder = ImageEncoder(repr_dim=16, base_channels=4, depth=2, rng=0)
        out = encoder(rng.random(size=(3, 3, 32, 32)))
        assert out.shape == (3, 16)

    def test_works_on_non_square_images(self, rng):
        encoder = ImageEncoder(repr_dim=8, base_channels=4, depth=2, rng=0)
        assert encoder(rng.random(size=(2, 3, 16, 32))).shape == (2, 8)

    def test_rejects_3d_input(self, rng):
        with pytest.raises(ValueError):
            ImageEncoder(rng=0)(rng.random(size=(3, 32, 32)))

    def test_gradients_flow(self, rng):
        encoder = ImageEncoder(repr_dim=8, base_channels=4, depth=1, rng=0)
        out = encoder(rng.random(size=(2, 3, 16, 16)))
        (out * out).sum().backward()
        assert all(p.grad is not None for p in encoder.parameters())


class TestProjectionAndClassifier:
    def test_projection_is_unit_norm(self, rng):
        head = ProjectionHead(16, 8, rng=0)
        out = head(rng.normal(size=(5, 16)))
        np.testing.assert_allclose(np.linalg.norm(out.data, axis=1), np.ones(5), atol=1e-9)

    def test_projection_without_normalisation(self, rng):
        head = ProjectionHead(16, 8, normalize=False, rng=0)
        out = head(rng.normal(size=(5, 16)))
        assert not np.allclose(np.linalg.norm(out.data, axis=1), 1.0)

    def test_classifier_logits_shape(self, rng):
        head = ClassifierHead(16, 4, rng=0)
        assert head(rng.normal(size=(6, 16))).shape == (6, 4)

    def test_linear_probe_mode(self, rng):
        head = ClassifierHead(16, 3, hidden_dim=None, rng=0)
        assert head(rng.normal(size=(2, 16))).shape == (2, 3)

    def test_encoder_plus_classifier_learns_simple_task(self, rng):
        # class 0: low-frequency sine, class 1: high-frequency sine
        t = np.linspace(0, 1, 40)
        X0 = np.sin(2 * np.pi * 2 * t)[None, None, :] + 0.05 * rng.normal(size=(20, 1, 40))
        X1 = np.sin(2 * np.pi * 8 * t)[None, None, :] + 0.05 * rng.normal(size=(20, 1, 40))
        X = np.concatenate([X0, X1])
        y = np.array([0] * 20 + [1] * 20)
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=2, rng=0)
        classifier = ClassifierHead(16, 2, hidden_dim=16, rng=0)
        optimizer = Adam(list(encoder.parameters()) + list(classifier.parameters()), lr=5e-3)
        for _ in range(30):
            optimizer.zero_grad()
            loss = F.cross_entropy(classifier(encoder(X)), y)
            loss.backward()
            optimizer.step()
        encoder.eval()
        classifier.eval()
        accuracy = F.nll_accuracy(classifier(encoder(Tensor(X))), y)
        assert accuracy >= 0.9
