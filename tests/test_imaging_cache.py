"""Tests for the cross-epoch render cache and its pre-training integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AimTSConfig
from repro.core.pretrainer import AimTSPretrainer
from repro.imaging import LineChartRenderer, RenderCache, content_hash


@pytest.fixture
def renderer() -> LineChartRenderer:
    return LineChartRenderer(panel_size=16)


@pytest.fixture
def pool(rng) -> np.ndarray:
    return rng.normal(size=(12, 1, 32))


class TestRenderCacheBasics:
    def test_precompute_then_all_hits(self, renderer, pool):
        cache = RenderCache(renderer)
        stats = cache.precompute_pool(pool)
        assert stats["entries"] == pool.shape[0]
        assert stats["rendered_samples"] == pool.shape[0]
        indices = np.array([3, 0, 7])
        images = cache.get_batch(pool[indices], indices)
        np.testing.assert_array_equal(images, renderer.render_batch(pool[indices]))
        assert cache.hits == 3 and cache.misses == 0
        assert cache.hit_rate == 1.0
        # a second epoch re-renders nothing
        cache.get_batch(pool[indices], indices)
        assert cache.rendered_samples == pool.shape[0]

    def test_cold_lookup_is_a_miss_then_a_hit(self, renderer, pool):
        cache = RenderCache(renderer)
        indices = np.array([1, 2])
        cache.get_batch(pool[indices], indices)
        assert (cache.hits, cache.misses) == (0, 2)
        cache.get_batch(pool[indices], indices)
        assert (cache.hits, cache.misses) == (2, 2)

    def test_content_hash_mismatch_triggers_rerender(self, renderer, pool):
        cache = RenderCache(renderer)
        cache.precompute_pool(pool)
        changed = pool[[0]] + 1.0  # same index, different content
        images = cache.get_batch(changed, np.array([0]))
        assert cache.misses == 1
        np.testing.assert_array_equal(images, renderer.render_batch(changed))
        # the refreshed entry now serves the new content
        cache.get_batch(changed, np.array([0]))
        assert cache.misses == 1

    def test_validation_can_be_disabled(self, renderer, pool):
        cache = RenderCache(renderer, validate=False)
        cache.precompute_pool(pool)
        cache.get_batch(pool[[0]] + 1.0, np.array([0]))  # stale but trusted
        assert cache.misses == 0

    def test_content_hash_distinguishes_values_and_shapes(self):
        a = np.zeros((2, 8))
        assert content_hash(a) == content_hash(a.copy())
        assert content_hash(a) != content_hash(np.ones((2, 8)))
        assert content_hash(a) != content_hash(np.zeros((4, 4)))

    def test_content_hash_is_dtype_canonical(self, renderer):
        # a pool and its loader-promoted batches must hash identically
        ints = np.arange(8).reshape(1, 8)
        assert content_hash(ints) == content_hash(ints.astype(np.float64))
        assert content_hash(ints.astype(np.float32)) == content_hash(ints.astype(np.float64))
        pool = np.arange(24).reshape(3, 1, 8)  # int pool
        cache = RenderCache(renderer)
        cache.precompute_pool(pool)
        cache.get_batch(pool[:2].astype(np.float64), np.arange(2))
        assert cache.misses == 0 and cache.hits == 2

    def test_clear_drops_entries(self, renderer, pool):
        cache = RenderCache(renderer)
        cache.precompute_pool(pool)
        cache.clear()
        assert len(cache) == 0 and cache.nbytes == 0

    def test_input_validation(self, renderer, pool):
        with pytest.raises(ValueError):
            RenderCache(renderer, max_bytes=0)
        cache = RenderCache(renderer)
        with pytest.raises(ValueError):
            cache.precompute_pool(pool[0])
        with pytest.raises(ValueError):
            cache.get_batch(pool[:2], np.array([0, 1, 2]))


class TestRenderCacheEviction:
    def test_precompute_caches_only_the_budgeted_prefix(self, renderer, pool):
        image_nbytes = renderer.render_batch(pool[:1]).nbytes
        cache = RenderCache(renderer, max_bytes=4 * image_nbytes)
        stats = cache.precompute_pool(pool)
        assert len(cache) == 4
        assert sorted(cache._images) == [0, 1, 2, 3]  # prefix kept, no churn
        assert cache.nbytes <= cache.max_bytes
        assert cache.evictions == 0
        # nothing beyond the budget was rasterised up front
        assert stats["rendered_samples"] == 4

    def test_eviction_respects_budget_and_frees_memory(self, renderer, pool):
        image_nbytes = renderer.render_batch(pool[:1]).nbytes
        cache = RenderCache(renderer, max_bytes=4 * image_nbytes)
        cache.precompute_pool(pool)
        cache.get_batch(pool[4:10], np.arange(4, 10))  # 6 misses -> churn
        assert cache.nbytes <= cache.max_bytes
        assert cache.evictions > 0
        # budgeted entries are standalone copies (a view would pin the whole
        # bulk render array past eviction) and evicted hashes are dropped
        assert all(image.base is None for image in cache._images.values())
        assert set(cache._hashes) == set(cache._images)

    def test_least_recently_used_goes_first(self, renderer, pool):
        image_nbytes = renderer.render_batch(pool[:1]).nbytes
        cache = RenderCache(renderer, max_bytes=2 * image_nbytes)
        cache.get_batch(pool[[0, 1]], np.array([0, 1]))
        cache.get_batch(pool[[0]], np.array([0]))  # touch 0 so 1 is the LRU
        cache.get_batch(pool[[2]], np.array([2]))  # evicts 1
        assert 0 in cache and 2 in cache and 1 not in cache

    def test_rejected_insert_keeps_existing_entry(self, renderer, pool):
        image = renderer.render_batch(pool[:1])[0]
        cache = RenderCache(renderer, max_bytes=2 * image.nbytes)
        assert cache.insert(0, pool[0], image)
        too_big = np.zeros((3, 64, 64))  # exceeds the whole budget
        assert not cache.insert(0, pool[0], too_big)
        assert 0 in cache  # the valid entry survived the failed replacement
        np.testing.assert_array_equal(cache.get_batch(pool[:1], np.array([0]))[0], image)
        assert cache.misses == 0

    def test_insert_on_miss_false_freezes_the_prefix(self, renderer, pool):
        image_nbytes = renderer.render_batch(pool[:1]).nbytes
        cache = RenderCache(renderer, max_bytes=4 * image_nbytes, insert_on_miss=False)
        cache.precompute_pool(pool)
        cache.get_batch(pool[2:8], np.arange(2, 8))  # 2 hits, 4 frozen misses
        assert (cache.hits, cache.misses, cache.evictions) == (2, 4, 0)
        assert sorted(cache._images) == [0, 1, 2, 3]  # prefix untouched
        # a stale cached index is still refreshed in place
        cache.get_batch(pool[[0]] + 1.0, np.array([0]))
        cache.get_batch(pool[[0]] + 1.0, np.array([0]))
        assert cache.misses == 5  # only the first stale lookup missed

    def test_oversized_image_is_not_cached(self, renderer, pool):
        cache = RenderCache(renderer, max_bytes=8)  # smaller than any image
        cache.precompute_pool(pool)
        assert len(cache) == 0
        cache.get_batch(pool[:2], np.arange(2))
        assert len(cache) == 0 and cache.misses == 2


class TestRenderCacheSpill:
    def spill_cache(self, renderer, tmp_path, ram_images=4, **kwargs):
        image_nbytes = renderer.image_nbytes(1)
        return RenderCache(
            renderer,
            max_bytes=ram_images * image_nbytes,
            spill_dir=tmp_path / "spill",
            **kwargs,
        )

    def test_evictions_spill_and_serve_disk_hits(self, renderer, pool, tmp_path):
        cache = self.spill_cache(renderer, tmp_path)
        ref = renderer.render_batch(pool)
        cache.get_batch(pool, np.arange(len(pool)))  # 12 renders, 8 spill
        stats = cache.stats()
        assert stats["entries"] == 4
        assert stats["spill_entries"] == len(pool) - 4
        assert stats["spilled_bytes"] == (len(pool) - 4) * renderer.image_nbytes(1)
        assert len(list((tmp_path / "spill").glob("img-*.npy"))) == len(pool) - 4
        # second epoch: everything is served from RAM or disk, zero re-renders
        out = cache.get_batch(pool, np.arange(len(pool)))
        np.testing.assert_array_equal(out, ref)
        assert cache.rendered_samples == len(pool)
        assert cache.disk_hits > 0
        assert cache.readback_failures == 0

    def test_each_image_is_written_to_disk_at_most_once(self, renderer, pool, tmp_path):
        cache = self.spill_cache(renderer, tmp_path)
        for _ in range(3):  # promotion/demotion cycles across epochs
            cache.get_batch(pool, np.arange(len(pool)))
        # deterministic renders: demoting an already-spilled entry is a no-op
        assert cache.spill_writes == cache.stats()["spill_entries"]

    def test_corrupted_spill_file_counts_readback_failure(self, renderer, pool, tmp_path):
        cache = self.spill_cache(renderer, tmp_path)
        cache.get_batch(pool, np.arange(len(pool)))
        victim = sorted(cache._spill_meta)[0]
        path = tmp_path / "spill" / f"img-{victim:09d}.npy"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(raw)
        out = cache.get_batch(pool[[victim]], np.array([victim]))
        np.testing.assert_array_equal(out[0], renderer.render_batch(pool[[victim]])[0])
        assert cache.readback_failures == 1
        assert victim not in cache._spill_meta  # the bad file was dropped

    def test_stale_series_drops_spill_entry_silently(self, renderer, pool, tmp_path):
        cache = self.spill_cache(renderer, tmp_path)
        cache.get_batch(pool, np.arange(len(pool)))
        victim = sorted(cache._spill_meta)[0]
        assert victim not in cache._images
        changed = pool[[victim]] + 1.0
        out = cache.get_batch(changed, np.array([victim]))
        np.testing.assert_array_equal(out[0], renderer.render_batch(changed)[0])
        assert cache.readback_failures == 0  # staleness is not corruption
        assert victim not in cache._spill_meta

    def test_spill_byte_budget_is_respected(self, renderer, pool, tmp_path):
        image_nbytes = renderer.image_nbytes(1)
        cache = self.spill_cache(
            renderer, tmp_path, ram_images=2, spill_max_bytes=3 * image_nbytes
        )
        cache.get_batch(pool, np.arange(len(pool)))
        stats = cache.stats()
        assert stats["spill_entries"] == 3
        assert stats["spilled_bytes"] == 3 * image_nbytes
        assert len(list((tmp_path / "spill").glob("img-*.npy"))) == 3

    def test_clear_removes_spill_files(self, renderer, pool, tmp_path):
        cache = self.spill_cache(renderer, tmp_path)
        cache.get_batch(pool, np.arange(len(pool)))
        cache.clear()
        assert cache.stats()["spill_entries"] == 0
        assert not list((tmp_path / "spill").glob("img-*.npy"))

    def test_spill_configuration_validation(self, renderer, tmp_path):
        with pytest.raises(ValueError):
            RenderCache(renderer, spill_max_bytes=1024)  # needs spill_dir
        with pytest.raises(ValueError):
            RenderCache(renderer, spill_dir=tmp_path, spill_max_bytes=0)


class TestRenderCacheSpillSharing:
    """Several cache instances (e.g. pipelined producer processes) over one
    spill directory: files appear atomically with ``.meta`` sidecars, so
    siblings serve and adopt each other's renders instead of re-rendering."""

    def two_caches(self, renderer, tmp_path, ram_images=4):
        image_nbytes = renderer.image_nbytes(1)
        make = lambda: RenderCache(  # noqa: E731 - tiny local factory
            renderer, max_bytes=ram_images * image_nbytes, spill_dir=tmp_path / "spill"
        )
        return make(), make()

    def test_sibling_serves_existing_spill_files_without_rendering(
        self, renderer, pool, tmp_path
    ):
        first, second = self.two_caches(renderer, tmp_path)
        ref = renderer.render_batch(pool)
        first.get_batch(pool, np.arange(len(pool)))
        spilled = np.array(sorted(first._spill_meta))
        out = second.get_batch(pool[spilled], spilled)
        np.testing.assert_array_equal(out, ref[spilled])
        # every request was discovered through a sidecar: zero renders
        assert second.rendered_samples == 0
        assert second.disk_hits == len(spilled)

    def test_sibling_adopts_files_instead_of_rewriting(self, renderer, pool, tmp_path):
        first, second = self.two_caches(renderer, tmp_path)
        first.get_batch(pool, np.arange(len(pool)))
        second.get_batch(pool, np.arange(len(pool)))
        stats = second.stats()
        # the sibling registered the files it evicted back onto disk without
        # writing a single byte — the deterministic render is already there
        assert second.spill_writes == 0
        assert stats["spill_entries"] > 0
        assert stats["spilled_bytes"] == stats["spill_entries"] * renderer.image_nbytes(1)

    def test_stale_sidecar_of_another_pool_is_not_adopted(self, renderer, pool, tmp_path):
        first, second = self.two_caches(renderer, tmp_path)
        first.get_batch(pool, np.arange(len(pool)))
        victim = sorted(first._spill_meta)[0]
        changed = pool[[victim]] + 1.0
        out = second.get_batch(changed, np.array([victim]))
        np.testing.assert_array_equal(out[0], renderer.render_batch(changed)[0])
        assert second.rendered_samples == 1  # mismatch → fresh render
        assert second.readback_failures == 0  # staleness is not corruption
        # the other instance's file was left alone (it may still be valid there)
        assert victim in first._spill_meta
        np.testing.assert_array_equal(
            first.get_batch(pool[[victim]], np.array([victim]))[0],
            renderer.render_batch(pool[[victim]])[0],
        )

    def test_discovered_corrupt_file_counts_failure_and_is_removed(
        self, renderer, pool, tmp_path
    ):
        first, second = self.two_caches(renderer, tmp_path)
        first.get_batch(pool, np.arange(len(pool)))
        victim = sorted(first._spill_meta)[0]
        path = tmp_path / "spill" / f"img-{victim:09d}.npy"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(raw)
        out = second.get_batch(pool[[victim]], np.array([victim]))
        np.testing.assert_array_equal(out[0], renderer.render_batch(pool[[victim]])[0])
        assert second.readback_failures == 1
        assert not path.exists()  # the bad file (and its sidecar) were dropped
        assert not path.with_name(path.name + ".meta").exists()


class TestPretrainerCacheIntegration:
    def _config(self, **overrides) -> AimTSConfig:
        base = dict(
            repr_dim=16,
            proj_dim=8,
            hidden_channels=8,
            depth=1,
            panel_size=16,
            series_length=32,
            batch_size=8,
            epochs=2,
            seed=0,
            use_prototype_loss=False,
        )
        base.update(overrides)
        return AimTSConfig(**base)

    def test_cached_fit_matches_uncached_losses_exactly(self, rng):
        pool = rng.normal(size=(20, 1, 32))
        cached = AimTSPretrainer(self._config(cache_images=True)).fit(pool.copy())
        uncached = AimTSPretrainer(self._config(cache_images=False)).fit(pool.copy())
        assert cached.series_image_loss == uncached.series_image_loss
        assert cached.total_loss == uncached.total_loss

    def test_fit_renders_each_pool_sample_once(self, rng):
        pool = rng.normal(size=(20, 1, 32))
        pretrainer = AimTSPretrainer(self._config(cache_images=True))
        pretrainer.fit(pool)
        stats = pretrainer.render_cache.stats()
        assert stats["rendered_samples"] == pool.shape[0]
        assert stats["misses"] == 0
        assert stats["hit_rate"] == 1.0
        # both epochs were served from the cache
        assert stats["hits"] == 2 * pool.shape[0]

    def test_cache_disabled_leaves_no_cache(self, rng):
        pool = rng.normal(size=(12, 1, 32))
        pretrainer = AimTSPretrainer(self._config(cache_images=False))
        pretrainer.fit(pool)
        assert pretrainer.render_cache is None

    def test_cache_budget_config_is_honoured(self, rng):
        pool = rng.normal(size=(12, 1, 32))
        image_nbytes = 3 * 16 * 16 * 8
        pretrainer = AimTSPretrainer(
            self._config(cache_images=True, cache_max_bytes=4 * image_nbytes)
        )
        history = pretrainer.fit(pool)
        assert pretrainer.render_cache.nbytes <= 4 * image_nbytes
        # a budget smaller than the pool must not churn the LRU during fit
        assert pretrainer.render_cache.evictions == 0
        assert len(history.series_image_loss) == 2

    def test_default_cache_budget_is_finite(self):
        assert AimTSConfig().cache_max_bytes == 256 * 1024 * 1024

    def test_spill_config_reaches_the_cache(self, rng, tmp_path):
        pool = rng.normal(size=(12, 1, 32))
        image_nbytes = 3 * 16 * 16 * 8
        pretrainer = AimTSPretrainer(
            self._config(
                cache_max_bytes=4 * image_nbytes,
                cache_spill_dir=str(tmp_path / "spill"),
            )
        )
        history = pretrainer.fit(pool)
        stats = pretrainer.render_cache.stats()
        # with the spill tier on, evicted renders land on disk and hit later,
        # so the whole pool still renders exactly once across both epochs
        assert stats["rendered_samples"] == pool.shape[0]
        assert stats["spill_entries"] > 0
        assert stats["disk_hits"] > 0
        assert len(history.series_image_loss) == 2

    def test_float32_image_dtype_pipeline(self, rng):
        pool = rng.normal(size=(12, 1, 32))
        pretrainer = AimTSPretrainer(self._config(image_dtype="float32"))
        history = pretrainer.fit(pool)
        assert pretrainer.renderer.dtype == np.float32
        assert np.isfinite(history.series_image_loss).all()
