"""Tests for the component registry, bundle checkpoints and legacy shims."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import (
    AUGMENTATIONS,
    ENCODERS,
    SCHEMA_VERSION,
    BundleFormatError,
    estimator_names,
    load_bundle,
    load_estimator,
    make_estimator,
    peek_manifest,
    save_bundle,
)
from repro.api.bundle import MANIFEST_KEY
from repro.baselines import BaselineConfig, TS2Vec
from repro.core import AimTS, AimTSConfig, FineTuneConfig


@pytest.fixture
def tiny_baseline_config():
    return BaselineConfig(
        repr_dim=10, proj_dim=5, hidden_channels=5, depth=1, series_length=32, batch_size=8, epochs=1, seed=0
    )


class TestRegistry:
    def test_all_expected_estimators_registered(self):
        expected = {
            "aimts",
            "ts2vec",
            "tstcc",
            "tloss",
            "tnc",
            "simclr",
            "moment",
            "units",
            "supervised_cnn",
            "linear",
            "rocket",
            "minirocket",
        }
        assert expected == set(estimator_names())

    def test_unknown_estimator_raises_with_known_names(self):
        with pytest.raises(KeyError, match="unknown estimator"):
            make_estimator("resnet")

    def test_names_are_case_insensitive(self):
        assert type(make_estimator("Rocket", n_kernels=8)).__name__ == "Rocket"

    def test_config_overrides_routed_to_dataclass(self):
        estimator = make_estimator("ts2vec", repr_dim=12, tau=0.07)
        assert estimator.config.repr_dim == 12
        assert estimator.tau == 0.07

    def test_explicit_config_object_with_overrides(self, tiny_baseline_config):
        estimator = make_estimator("tloss", config=tiny_baseline_config, repr_dim=14)
        assert estimator.config.repr_dim == 14
        assert estimator.config.proj_dim == tiny_baseline_config.proj_dim

    def test_spec_dict_construction(self):
        estimator = make_estimator({"name": "minirocket", "n_kernels": 9, "seed": 1})
        assert estimator.n_kernels == 9
        with pytest.raises(ValueError, match="'name' key"):
            make_estimator({"n_kernels": 9})

    def test_pre_use_registration_not_clobbered_by_builtins(self, monkeypatch):
        """A custom factory registered before first registry use survives population."""
        from repro.api import registry as registry_module

        original = dict(registry_module.ESTIMATORS._factories)
        try:
            monkeypatch.setattr(registry_module, "_POPULATED", False)
            registry_module.ESTIMATORS.register("rocket", lambda **kw: "custom")
            assert registry_module.ESTIMATORS.create("rocket") == "custom"
        finally:
            registry_module.ESTIMATORS._factories.clear()
            registry_module.ESTIMATORS._factories.update(original)

    def test_encoder_and_augmentation_registries(self):
        encoder = ENCODERS.create("ts_encoder", hidden_channels=4, repr_dim=8, depth=1, rng=0)
        assert encoder.repr_dim == 8
        jitter = AUGMENTATIONS.create("jitter", sigma=0.5, seed=0)
        assert jitter.sigma == 0.5
        assert "time_warp" in AUGMENTATIONS


class TestBundleFormat:
    def test_round_trip_preserves_arrays_and_manifest(self, tmp_path):
        arrays = {"a": np.arange(4, dtype=np.float32), "b": np.eye(2)}
        path = save_bundle(tmp_path / "bundle", arrays, {"estimator": "demo"})
        assert path.endswith(".npz")
        loaded, manifest = load_bundle(path)
        np.testing.assert_array_equal(loaded["a"], arrays["a"])
        assert loaded["a"].dtype == np.float32
        assert manifest["estimator"] == "demo"
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["dtypes"]["a"] == "float32"

    def test_case_insensitive_npz_suffix_not_doubled(self, tmp_path):
        path = save_bundle(tmp_path / "model.NPZ", {"a": np.zeros(1)}, {})
        assert path.endswith("model.NPZ")

    def test_load_accepts_the_same_path_string_as_save(self, tmp_path):
        """save("m") writes "m.npz"; load("m") must find it too."""
        bare = tmp_path / "suffixless"
        save_bundle(bare, {"a": np.ones(2)}, {"estimator": "demo"})
        arrays, manifest = load_bundle(bare)
        np.testing.assert_array_equal(arrays["a"], np.ones(2))
        assert peek_manifest(bare)["estimator"] == "demo"

    def test_legacy_archive_rejected_with_clear_error(self, tmp_path):
        legacy = tmp_path / "legacy.npz"
        np.savez(legacy, weight=np.zeros(3))
        with pytest.raises(BundleFormatError, match="no manifest"):
            load_bundle(legacy)
        assert peek_manifest(legacy) is None

    def test_schema_version_mismatch_rejected(self, tmp_path):
        manifest = {"format": "repro-bundle", "schema_version": SCHEMA_VERSION + 1}
        encoded = np.frombuffer(json.dumps(manifest).encode(), dtype=np.uint8)
        bad = tmp_path / "future.npz"
        np.savez(bad, **{MANIFEST_KEY: encoded})
        with pytest.raises(BundleFormatError, match="schema version"):
            load_bundle(bad)

    def test_bundle_without_estimator_name_rejected(self, tmp_path):
        path = save_bundle(tmp_path / "anon", {"a": np.zeros(1)}, {})
        with pytest.raises(BundleFormatError, match="does not name its estimator"):
            load_estimator(path)


class TestFullBundleContents:
    def test_aimts_bundle_holds_finetuned_classifier_and_label_map(
        self, tmp_path, small_dataset, tiny_config, tiny_finetune_config
    ):
        model = AimTS(tiny_config)
        model.pretrain(np.random.default_rng(0).normal(size=(10, 1, 48)))
        model.fine_tune(small_dataset, tiny_finetune_config)
        path = model.save(tmp_path / "aimts-full")
        manifest = peek_manifest(path)
        assert manifest["estimator"] == "aimts"
        assert manifest["pretrained"] is True
        assert manifest["finetune"]["n_classes"] == small_dataset.n_classes
        assert manifest["config"]["repr_dim"] == tiny_config.repr_dim
        arrays, _ = load_bundle(path)
        assert "finetune.label_map" in arrays
        assert any(key.startswith("finetune.classifier.") for key in arrays)

    def test_aimts_legacy_checkpoint_still_loads(self, tmp_path, tiny_config):
        """Pre-bundle encoder-only .npz checkpoints load via the fallback path."""
        from repro.nn.serialization import save_state_dict

        model = AimTS(tiny_config)
        state = {}
        for prefix, module in model._pretrain_modules().items():
            for key, value in module.state_dict().items():
                state[f"{prefix}.{key}"] = value
        path = save_state_dict(state, tmp_path / "legacy-aimts")
        restored = AimTS(tiny_config).load(path)
        assert restored.is_pretrained
        # the suffixless path given to save works at load time too
        AimTS(tiny_config).load(tmp_path / "legacy-aimts")
        np.testing.assert_array_equal(
            restored.pretrainer.ts_encoder.state_dict()["input_conv.weight"],
            model.pretrainer.ts_encoder.state_dict()["input_conv.weight"],
        )

    def test_baseline_bundle_restores_pretrained_flag(
        self, tmp_path, tiny_baseline_config, small_dataset
    ):
        baseline = TS2Vec(tiny_baseline_config)
        baseline.pretrain(small_dataset.train.X, epochs=1)
        path = baseline.save(tmp_path / "ts2vec")
        clone = load_estimator(path)
        assert clone.is_pretrained
        assert clone.config == baseline.config
        np.testing.assert_array_equal(
            clone.encoder.state_dict()["input_conv.weight"],
            baseline.encoder.state_dict()["input_conv.weight"],
        )

    def test_pretrain_only_bundle_resets_fitted_classifier_on_load(
        self, tmp_path, tiny_baseline_config, small_dataset
    ):
        """Loading a checkpoint without a finetune section disarms predict()."""
        baseline = TS2Vec(tiny_baseline_config)
        baseline.pretrain(small_dataset.train.X, epochs=1)
        path = baseline.save(tmp_path / "pretrain-only")
        baseline.fine_tune(small_dataset, FineTuneConfig(epochs=1, batch_size=8, seed=0))
        assert baseline.is_fitted
        baseline.load(path)
        assert not baseline.is_fitted
        with pytest.raises(RuntimeError, match="no fine-tuned classifier"):
            baseline.predict(small_dataset.test.X)


class TestDeprecatedEntryPoints:
    def test_baseline_fit_and_evaluate_warns(self, tiny_baseline_config, small_dataset):
        baseline = TS2Vec(tiny_baseline_config)
        finetune = FineTuneConfig(epochs=1, batch_size=8, classifier_hidden_dim=8, seed=0)
        with pytest.warns(DeprecationWarning, match="fit_and_evaluate is deprecated"):
            accuracy = baseline.fit_and_evaluate(small_dataset, finetune, pretrain_epochs=1)
        assert 0.0 <= accuracy <= 1.0

    def test_aimts_evaluate_archive_warns(self, tiny_config, small_dataset):
        model = AimTS(tiny_config)
        finetune = FineTuneConfig(epochs=1, batch_size=8, classifier_hidden_dim=8, seed=0)
        with pytest.warns(DeprecationWarning, match="evaluate_archive is deprecated"):
            results = model.evaluate_archive([small_dataset], finetune)
        assert set(results) == {small_dataset.name}
