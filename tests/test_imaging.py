"""Tests for the line-chart rasteriser."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging import (
    VARIABLE_COLORS,
    LineChartRenderer,
    fill_non_finite,
    render_series_image,
)


class TestRendererBasics:
    def test_univariate_image_shape_and_range(self, rng):
        image = render_series_image(rng.normal(size=(1, 40)), panel_size=24)
        assert image.shape == (3, 24, 24)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_1d_input_is_accepted(self, rng):
        image = render_series_image(rng.normal(size=40), panel_size=16)
        assert image.shape == (3, 16, 16)

    def test_multivariate_grid_layout(self, rng):
        renderer = LineChartRenderer(panel_size=16)
        # 3 variables -> 2x2 grid of 16px panels
        image = renderer.render(rng.normal(size=(3, 30)))
        assert image.shape == (3, 32, 32)
        # 5 variables -> 3x2 grid (ceil(sqrt(5)) = 3 columns)
        image5 = renderer.render(rng.normal(size=(5, 30)))
        assert image5.shape == (3, 32, 48)

    def test_variables_use_distinct_colors(self, rng):
        renderer = LineChartRenderer(panel_size=16)
        image = renderer.render(rng.normal(size=(2, 30)))
        first_panel = image[:, :16, :16]
        second_panel = image[:, :16, 16:32]
        # colour ratio of non-black pixels differs between the panels
        def dominant_channel(panel):
            sums = panel.reshape(3, -1).sum(axis=1)
            return int(np.argmax(sums))

        assert dominant_channel(first_panel) != dominant_channel(second_panel)
        assert len(VARIABLE_COLORS) >= 8

    def test_render_batch(self, rng):
        renderer = LineChartRenderer(panel_size=12)
        images = renderer.render_batch(rng.normal(size=(4, 2, 20)))
        assert images.shape == (4, 3, 12, 24)

    def test_render_batch_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            LineChartRenderer().render_batch(rng.normal(size=(2, 20)))

    def test_render_rejects_3d_sample(self, rng):
        with pytest.raises(ValueError):
            LineChartRenderer().render(rng.normal(size=(2, 3, 20)))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LineChartRenderer(panel_size=0)
        with pytest.raises(ValueError):
            LineChartRenderer(margin=0.7)


class TestRendererSemantics:
    def test_constant_series_renders_flat_line(self):
        renderer = LineChartRenderer(panel_size=24, marker_every=100)
        image = renderer.render(np.full((1, 30), 3.0))
        intensity = image.sum(axis=0)
        lit_rows = np.flatnonzero(intensity.sum(axis=1) > 0)
        assert lit_rows.size <= 4  # a horizontal line touches very few rows

    def test_different_shapes_produce_different_images(self):
        renderer = LineChartRenderer(panel_size=24)
        t = np.linspace(0, 1, 50)
        sine = np.sin(2 * np.pi * t)[None, :]
        ramp = t[None, :]
        image_sine = renderer.render(sine)
        image_ramp = renderer.render(ramp)
        assert np.abs(image_sine - image_ramp).mean() > 0.01

    def test_amplitude_invariance_of_normalised_panels(self):
        # the panel normalises the value axis, so scaling the series does not
        # change the rendered shape (structural, not numerical, information)
        renderer = LineChartRenderer(panel_size=24)
        t = np.linspace(0, 1, 50)
        small = np.sin(2 * np.pi * t)[None, :]
        large = 100.0 * small
        np.testing.assert_allclose(renderer.render(small), renderer.render(large), atol=1e-9)

    def test_short_series_still_renders(self):
        image = render_series_image(np.array([[1.0]]), panel_size=8)
        assert image.shape == (3, 8, 8)
        assert image.max() > 0

    def test_markers_increase_lit_pixels(self, rng):
        series = rng.normal(size=(1, 30))
        dense = LineChartRenderer(panel_size=24, marker_every=1).render(series)
        sparse = LineChartRenderer(panel_size=24, marker_every=30).render(series)
        assert (dense.sum(axis=0) > 0).sum() >= (sparse.sum(axis=0) > 0).sum()


class TestVectorizedEquivalence:
    """The vectorized batch path must be pixel-equivalent to the reference."""

    @pytest.mark.parametrize(
        "shape,kwargs",
        [
            ((6, 1, 40), {}),
            ((4, 3, 30), {"panel_size": 24}),
            ((3, 5, 17), {"marker_every": 1}),
            ((2, 2, 1), {}),  # single-observation series
            ((5, 1, 25), {"line_width": 2.5}),  # splat values above 1 before clip
            ((4, 2, 33), {"margin": 0.0}),
            ((2, 9, 12), {}),  # colour cycle wraps past 8 variables
        ],
    )
    def test_render_batch_pixel_equivalence(self, rng, shape, kwargs):
        X = rng.normal(size=shape)
        reference = LineChartRenderer(reference=True, **kwargs).render_batch(X)
        vectorized = LineChartRenderer(**kwargs).render_batch(X)
        np.testing.assert_allclose(vectorized, reference, rtol=0, atol=1e-12)

    def test_single_sample_render_equivalence(self, rng):
        sample = rng.normal(size=(3, 28))
        reference = LineChartRenderer(reference=True).render(sample)
        vectorized = LineChartRenderer().render(sample)
        np.testing.assert_allclose(vectorized, reference, rtol=0, atol=1e-12)

    def test_constant_series_equivalence(self):
        X = np.stack([np.full((1, 30), 3.0), np.zeros((1, 30))])
        reference = LineChartRenderer(reference=True).render_batch(X)
        vectorized = LineChartRenderer().render_batch(X)
        np.testing.assert_allclose(vectorized, reference, rtol=0, atol=1e-12)

    def test_empty_batch(self):
        images = LineChartRenderer(panel_size=8).render_batch(np.zeros((0, 2, 10)))
        assert images.shape == (0, 3, 8, 16)
        reference = LineChartRenderer(panel_size=8, reference=True).render_batch(
            np.zeros((0, 2, 10))
        )
        assert reference.shape == (0, 3, 8, 16)
        assert reference.dtype == images.dtype == np.float64

    def test_reference_flag_rejects_bad_shapes_too(self, rng):
        with pytest.raises(ValueError):
            LineChartRenderer(reference=True).render_batch(rng.normal(size=(2, 20)))
        with pytest.raises(ValueError):
            LineChartRenderer().render(rng.normal(size=(2, 3, 20)))


class TestDtypeFastPath:
    def test_float32_output_dtype_and_closeness(self, rng):
        X = rng.normal(size=(4, 2, 40))
        full = LineChartRenderer().render_batch(X)
        fast = LineChartRenderer(dtype="float32").render_batch(X)
        assert fast.dtype == np.float32
        assert full.dtype == np.float64
        assert np.abs(fast - full).max() < 1e-3
        assert fast.min() >= 0.0 and fast.max() <= 1.0

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            LineChartRenderer(dtype="int32")

    def test_reference_path_requires_float64(self):
        with pytest.raises(ValueError, match="float64"):
            LineChartRenderer(dtype="float32", reference=True)

    def test_image_nbytes_matches_actual_render(self, rng):
        for dtype, n_variables in (("float64", 3), ("float32", 5)):
            renderer = LineChartRenderer(panel_size=12, dtype=dtype)
            images = renderer.render_batch(rng.normal(size=(2, n_variables, 10)))
            assert renderer.image_nbytes(n_variables) == images[0].nbytes


class TestNaNHandling:
    def test_nan_series_renders_finite_image(self, rng):
        X = rng.normal(size=(2, 2, 50))
        X[0, 0, 5:15] = np.nan
        X[1, 1, 0] = np.inf
        images = LineChartRenderer().render_batch(X)
        assert np.isfinite(images).all()
        assert images.max() > 0

    def test_nan_equivalence_between_paths(self, rng):
        X = rng.normal(size=(2, 1, 40))
        X[0, 0, 10:20] = np.nan
        X[1, 0, -1] = np.nan  # trailing gap extends the last finite value
        reference = LineChartRenderer(reference=True).render_batch(X)
        vectorized = LineChartRenderer().render_batch(X)
        np.testing.assert_allclose(vectorized, reference, rtol=0, atol=1e-12)

    def test_all_nan_series_raises(self):
        X = np.full((1, 1, 20), np.nan)
        with pytest.raises(ValueError, match="no finite values"):
            LineChartRenderer().render_batch(X)
        with pytest.raises(ValueError, match="no finite values"):
            LineChartRenderer(reference=True).render(X[0])

    def test_fill_non_finite_interpolates(self):
        series = np.array([0.0, np.nan, 2.0, np.nan, np.nan, 5.0])
        filled = fill_non_finite(series)
        np.testing.assert_allclose(filled, [0.0, 1.0, 2.0, 3.0, 4.0, 5.0])

    def test_fill_non_finite_no_copy_when_clean(self, rng):
        X = rng.normal(size=(2, 3, 10))
        assert fill_non_finite(X) is X
