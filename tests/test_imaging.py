"""Tests for the line-chart rasteriser."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging import VARIABLE_COLORS, LineChartRenderer, render_series_image


class TestRendererBasics:
    def test_univariate_image_shape_and_range(self, rng):
        image = render_series_image(rng.normal(size=(1, 40)), panel_size=24)
        assert image.shape == (3, 24, 24)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_1d_input_is_accepted(self, rng):
        image = render_series_image(rng.normal(size=40), panel_size=16)
        assert image.shape == (3, 16, 16)

    def test_multivariate_grid_layout(self, rng):
        renderer = LineChartRenderer(panel_size=16)
        # 3 variables -> 2x2 grid of 16px panels
        image = renderer.render(rng.normal(size=(3, 30)))
        assert image.shape == (3, 32, 32)
        # 5 variables -> 3x2 grid (ceil(sqrt(5)) = 3 columns)
        image5 = renderer.render(rng.normal(size=(5, 30)))
        assert image5.shape == (3, 32, 48)

    def test_variables_use_distinct_colors(self, rng):
        renderer = LineChartRenderer(panel_size=16)
        image = renderer.render(rng.normal(size=(2, 30)))
        first_panel = image[:, :16, :16]
        second_panel = image[:, :16, 16:32]
        # colour ratio of non-black pixels differs between the panels
        def dominant_channel(panel):
            sums = panel.reshape(3, -1).sum(axis=1)
            return int(np.argmax(sums))

        assert dominant_channel(first_panel) != dominant_channel(second_panel)
        assert len(VARIABLE_COLORS) >= 8

    def test_render_batch(self, rng):
        renderer = LineChartRenderer(panel_size=12)
        images = renderer.render_batch(rng.normal(size=(4, 2, 20)))
        assert images.shape == (4, 3, 12, 24)

    def test_render_batch_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            LineChartRenderer().render_batch(rng.normal(size=(2, 20)))

    def test_render_rejects_3d_sample(self, rng):
        with pytest.raises(ValueError):
            LineChartRenderer().render(rng.normal(size=(2, 3, 20)))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LineChartRenderer(panel_size=0)
        with pytest.raises(ValueError):
            LineChartRenderer(margin=0.7)


class TestRendererSemantics:
    def test_constant_series_renders_flat_line(self):
        renderer = LineChartRenderer(panel_size=24, marker_every=100)
        image = renderer.render(np.full((1, 30), 3.0))
        intensity = image.sum(axis=0)
        lit_rows = np.flatnonzero(intensity.sum(axis=1) > 0)
        assert lit_rows.size <= 4  # a horizontal line touches very few rows

    def test_different_shapes_produce_different_images(self):
        renderer = LineChartRenderer(panel_size=24)
        t = np.linspace(0, 1, 50)
        sine = np.sin(2 * np.pi * t)[None, :]
        ramp = t[None, :]
        image_sine = renderer.render(sine)
        image_ramp = renderer.render(ramp)
        assert np.abs(image_sine - image_ramp).mean() > 0.01

    def test_amplitude_invariance_of_normalised_panels(self):
        # the panel normalises the value axis, so scaling the series does not
        # change the rendered shape (structural, not numerical, information)
        renderer = LineChartRenderer(panel_size=24)
        t = np.linspace(0, 1, 50)
        small = np.sin(2 * np.pi * t)[None, :]
        large = 100.0 * small
        np.testing.assert_allclose(renderer.render(small), renderer.render(large), atol=1e-9)

    def test_short_series_still_renders(self):
        image = render_series_image(np.array([[1.0]]), panel_size=8)
        assert image.shape == (3, 8, 8)
        assert image.max() > 0

    def test_markers_increase_lit_pixels(self, rng):
        series = rng.normal(size=(1, 30))
        dense = LineChartRenderer(panel_size=24, marker_every=1).render(series)
        sparse = LineChartRenderer(panel_size=24, marker_every=30).render(series)
        assert (dense.sum(axis=0) > 0).sum() >= (sparse.sum(axis=0) > 0).sum()
