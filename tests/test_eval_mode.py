"""`load_estimator(eval_mode=True)` — Conv→BN folding once at load time.

The serving fast path folds every eval-time Conv→BatchNorm pair into the
conv weights when the bundle is loaded, instead of re-folding on every
``predict`` call.  These tests pin the contract: folding really happens,
predictions are bit-identical to the unfolded load, and the fold is
idempotent/train-safe at the module level.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import load_estimator, make_estimator
from repro.core.config import AimTSConfig, FineTuneConfig
from repro.nn import layers as L
from repro.nn.inference import fold_batchnorms
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def finetuned_bundle(tmp_path_factory):
    from repro.data.archives import make_dataset
    from repro.utils.seeding import seed_everything

    seed_everything(3407)
    config = AimTSConfig(
        repr_dim=16,
        proj_dim=8,
        hidden_channels=8,
        depth=2,  # depth 2: multiple Conv→BN pairs in the image trunk
        panel_size=16,
        series_length=48,
        n_variables=2,
        batch_size=8,
        epochs=1,
        seed=3407,
    )
    dataset = make_dataset(
        "evalmode_unit", "motion", n_classes=2, n_train=16, n_test=12, length=48, n_variables=2, seed=1
    )
    model = make_estimator("aimts", config=config)
    model.pretrain(np.random.default_rng(1).normal(size=(16, 2, 48)))
    model.fine_tune(dataset, FineTuneConfig(epochs=1, batch_size=8, seed=3407))
    path = model.save(tmp_path_factory.mktemp("evalmode") / "model.npz")
    return path, dataset.test.X


class TestEvalModeLoad:
    def test_folding_happened_and_batchnorms_are_gone(self, finetuned_bundle):
        path, _ = finetuned_bundle
        folded = load_estimator(path, eval_mode=True)
        assert folded._bn_folded > 0
        remaining = [
            type(module).__name__
            for module in folded.pretrainer.image_encoder.modules()
            if isinstance(module, (L.BatchNorm1d, L.BatchNorm2d))
        ]
        assert remaining == []  # every trunk BN replaced by Identity

    def test_folded_predictions_bit_identical_to_unfolded(self, finetuned_bundle):
        path, X = finetuned_bundle
        plain = load_estimator(path)
        folded = load_estimator(path, eval_mode=True)
        assert np.array_equal(plain.predict(X), folded.predict(X))
        assert np.array_equal(plain.predict_proba(X), folded.predict_proba(X))
        assert np.array_equal(plain.encode(X), folded.encode(X))

    def test_default_load_is_unfolded(self, finetuned_bundle):
        path, _ = finetuned_bundle
        plain = load_estimator(path)
        assert not hasattr(plain, "_bn_folded")
        has_bn = any(
            isinstance(module, (L.BatchNorm1d, L.BatchNorm2d))
            for module in plain.pretrainer.image_encoder.modules()
        )
        assert has_bn

    def test_eval_mode_tolerates_estimators_without_neural_modules(self, tmp_path):
        model = make_estimator("rocket", n_kernels=16)
        rng = np.random.default_rng(3)
        X = rng.normal(size=(12, 1, 32))
        y = np.array([0, 1] * 6)
        model.fit(X, y)
        path = model.save(tmp_path / "rocket.npz")
        folded = load_estimator(path, eval_mode=True)
        assert folded._bn_folded == 0
        assert np.array_equal(folded.predict(X), model.predict(X))


class TestFoldBatchnorms:
    def _conv_bn_stack(self) -> L.Sequential:
        rng = np.random.default_rng(5)
        stack = L.Sequential(
            L.Conv2d(2, 3, kernel_size=3, padding=1),
            L.BatchNorm2d(3),
            L.ReLU(),
        )
        bn = stack._modules[stack._order[1]]
        # non-trivial running stats so the fold actually changes the weights
        bn.running_mean = rng.normal(size=3)
        bn.running_var = rng.uniform(0.5, 2.0, size=3)
        return stack

    def test_fold_preserves_eval_forward(self):
        stack = self._conv_bn_stack()
        stack.eval()
        x = Tensor(np.random.default_rng(6).normal(size=(2, 2, 8, 8)))
        before = stack(x).data.copy()
        assert fold_batchnorms(stack) == 1
        after = stack(x).data
        np.testing.assert_allclose(after, before, rtol=1e-12, atol=1e-12)

    def test_fold_is_idempotent(self):
        stack = self._conv_bn_stack()
        stack.eval()
        assert fold_batchnorms(stack) == 1
        assert fold_batchnorms(stack) == 0  # BN already an Identity: nothing left

    def test_fold_preserves_parameter_dtype(self):
        from repro.nn.tensor import default_dtype

        with default_dtype(np.float32):
            stack = L.Sequential(L.Conv2d(1, 2, kernel_size=3), L.BatchNorm2d(2))
        stack.eval()
        assert fold_batchnorms(stack) == 1
        conv = stack._modules[stack._order[0]]
        assert conv.weight.data.dtype == np.float32
        assert conv.bias.data.dtype == np.float32
