"""Unit tests for the unified training engine (``repro.engine``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.bundle import BundleFormatError
from repro.api.registry import load_estimator
from repro.engine import (
    Callback,
    Checkpointer,
    DtypePolicy,
    EarlyStopping,
    GradAccumulation,
    GradClip,
    History,
    LossCurve,
    LossHistory,
    LRSchedulerCallback,
    ProgressLogger,
    Trainer,
    TrainLoop,
    TrainState,
    get_rng_state,
    set_rng_state,
)
from repro.nn import SGD, Adam, Linear, StepLR, Tensor
from repro.nn import functional as F
from repro.utils.seeding import new_rng


class ToyLoop(TrainLoop):
    """Least-squares regression on fixed synthetic data."""

    def __init__(self, *, seed: int = 0, n: int = 8, d: int = 3, batch_size: int = 4):
        data_rng = np.random.default_rng(42)
        self.X = data_rng.normal(size=(n, d))
        self.y = self.X @ data_rng.normal(size=(d, 1))
        self.model = Linear(d, 1, rng=7)
        self.batch_size = batch_size
        self.rng = new_rng(seed)

    def named_modules(self):
        return {"model": self.model}

    def named_rngs(self):
        return {"loop": self.rng}

    def make_batches(self, rng, epoch):
        order = np.arange(self.X.shape[0])
        self.rng.shuffle(order)
        for start in range(0, order.size, self.batch_size):
            index = order[start : start + self.batch_size]
            yield self.X[index], self.y[index]

    def batch_loss(self, batch):
        X, y = batch
        return F.mse_loss(self.model(Tensor(X)), y)


def make_trainer(loop=None, *, callbacks=(), lr=0.05, optimizer_cls=Adam, **kwargs):
    loop = loop or ToyLoop()
    optimizer = optimizer_cls(list(loop.parameters()), lr=lr)
    return Trainer(loop, optimizer, callbacks=list(callbacks), **kwargs)


class RecordingCallback(Callback):
    """Records every event emission for ordering assertions."""

    def __init__(self):
        self.events: list[str] = []

    def on_fit_start(self, trainer):
        self.events.append("fit_start")

    def on_epoch_start(self, trainer, epoch):
        self.events.append(f"epoch_start:{epoch}")

    def on_batch_end(self, trainer, logs):
        self.events.append("batch_end")

    def on_backward_end(self, trainer):
        self.events.append("backward_end")

    def on_epoch_end(self, trainer, logs):
        self.events.append(f"epoch_end:{trainer.state.epoch}")

    def on_fit_end(self, trainer):
        self.events.append("fit_end")


class TestHistory:
    def test_append_and_last(self):
        history = History()
        history.append({"loss": 1.0, "aux": 2.0})
        history.append({"loss": 0.5, "aux": 1.5})
        assert history.curve("loss") == [1.0, 0.5]
        assert history.last() == {"loss": 0.5, "aux": 1.5}
        assert len(history) == 2
        assert "loss" in history and "missing" not in history

    def test_empty(self):
        history = History()
        assert history.last() == {}
        assert len(history) == 0
        assert history.curve("loss") == []

    def test_load_round_trip(self):
        history = History()
        history.append({"loss": 1.25})
        restored = History().load(history.metrics)
        assert restored.metrics == history.metrics

    def test_loss_curve_is_a_list(self):
        history = History({"loss": [3.0, 2.0], "learning_rate": [0.1, 0.1]})
        curve = LossCurve(history.curve("loss"), history)
        assert isinstance(curve, list)
        assert curve == [3.0, 2.0]
        assert curve[-1] == 2.0
        assert curve.last()["loss"] == 2.0
        assert curve.history is history


class TestTrainerFit:
    def test_loss_decreases(self):
        trainer = make_trainer()
        history = trainer.fit(10)
        assert history.curve("loss")[-1] < history.curve("loss")[0]
        assert trainer.state.epoch == 10
        assert trainer.state.step == 10 * 2  # 8 samples / batch 4 = 2 steps/epoch
        assert trainer.state.batch == 10 * 2

    def test_event_order(self):
        recorder = RecordingCallback()
        trainer = make_trainer(ToyLoop(batch_size=8), callbacks=[recorder])
        trainer.fit(2)
        assert recorder.events == [
            "fit_start",
            "epoch_start:0",
            "backward_end",
            "batch_end",
            "epoch_end:1",
            "epoch_start:1",
            "backward_end",
            "batch_end",
            "epoch_end:2",
            "fit_end",
        ]

    def test_history_accumulates_across_fits(self):
        shared = History()
        loop = ToyLoop()
        trainer = make_trainer(loop, callbacks=[LossHistory(shared)])
        trainer.fit(2)
        trainer2 = make_trainer(loop, callbacks=[LossHistory(shared)])
        trainer2.fit(3)
        assert len(shared.curve("loss")) == 5

    def test_bad_batch_loss_rejected(self):
        class BadLoop(ToyLoop):
            def batch_loss(self, batch):
                return 1.0

        with pytest.raises(TypeError):
            make_trainer(BadLoop()).fit(1)

        class NoLossKey(ToyLoop):
            def batch_loss(self, batch):
                return {"total": super().batch_loss(batch)}

        with pytest.raises(KeyError):
            make_trainer(NoLossKey()).fit(1)

    def test_negative_epochs_rejected(self):
        with pytest.raises(ValueError):
            make_trainer().fit(-1)

    def test_learning_rate_logged_before_scheduler_step(self):
        loop = ToyLoop()
        optimizer = Adam(list(loop.parameters()), lr=0.1)
        scheduler = StepLR(optimizer, step_size=1, gamma=0.5)
        trainer = Trainer(loop, optimizer, scheduler=scheduler)
        history = trainer.fit(3)
        # the logged rate is the one the epoch trained with (seed semantics)
        assert history.curve("learning_rate") == pytest.approx([0.1, 0.05, 0.025])
        assert any(isinstance(cb, LRSchedulerCallback) for cb in trainer.callbacks)

    def test_dtype_policy_carried(self):
        trainer = make_trainer(dtype_policy=DtypePolicy(image_dtype="float32"))
        assert trainer.dtype_policy.image_dtype == "float32"
        assert make_trainer().dtype_policy == DtypePolicy()


class TestStockCallbacks:
    def test_early_stopping_stops(self):
        class FlatLoop(ToyLoop):
            def batch_loss(self, batch):
                # constant loss: no improvement after the first epoch
                return F.mse_loss(
                    self.model(Tensor(batch[0])) * 0.0, np.zeros((batch[0].shape[0], 1))
                )

        trainer = make_trainer(
            FlatLoop(), callbacks=[EarlyStopping("loss", patience=2)]
        )
        trainer.fit(50)
        assert trainer.state.epoch == 3  # 1 best epoch + 2 patience epochs
        assert trainer.state.stop_training
        assert "early stopping" in trainer.state.stop_reason

    def test_early_stopping_ignores_missing_metric(self):
        trainer = make_trainer(callbacks=[EarlyStopping("no_such_metric", patience=1)])
        trainer.fit(3)
        assert trainer.state.epoch == 3
        assert not trainer.state.stop_training

    def test_early_stopping_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(mode="sideways")
        with pytest.raises(ValueError):
            EarlyStopping(min_delta=-0.1)

    def test_grad_clip(self):
        clip = GradClip(max_norm=1e-6)
        trainer = make_trainer(callbacks=[clip])
        trainer.fit(1)
        assert clip.last_norm is not None and clip.last_norm > 1e-6
        grads = [p.grad for p in trainer.optimizer.parameters if p.grad is not None]
        norm = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
        assert norm <= 1e-6 * 1.0001

    def test_grad_accumulation_matches_full_batch(self):
        # one full-batch step == accumulating the same data in micro-batches
        full = ToyLoop(batch_size=8, seed=123)
        micro = ToyLoop(batch_size=2, seed=123)  # same shuffle stream
        t_full = make_trainer(full, optimizer_cls=SGD, lr=0.1)
        t_micro = make_trainer(
            micro, optimizer_cls=SGD, lr=0.1, callbacks=[GradAccumulation(4)]
        )
        t_full.fit(1)
        t_micro.fit(1)
        assert t_micro.state.batch == 4
        assert t_micro.state.step == 1 == t_full.state.step
        np.testing.assert_allclose(
            micro.model.weight.data, full.model.weight.data, rtol=0, atol=1e-12
        )

    def test_grad_accumulation_partial_window_matches_full_batch(self):
        # a leftover window smaller than `steps` still averages over the
        # samples it actually saw, so it too equals one full-batch step
        full = ToyLoop(n=6, batch_size=6, seed=9)
        micro = ToyLoop(n=6, batch_size=2, seed=9)  # 3 micro-batches < window 4
        t_full = make_trainer(full, optimizer_cls=SGD, lr=0.1)
        t_micro = make_trainer(
            micro, optimizer_cls=SGD, lr=0.1, callbacks=[GradAccumulation(4)]
        )
        t_full.fit(1)
        t_micro.fit(1)
        assert t_micro.state.step == 1
        np.testing.assert_allclose(
            micro.model.weight.data, full.model.weight.data, rtol=0, atol=1e-12
        )

    def test_batch_level_stop_aborts_epoch(self):
        class StopAtFirstBatch(Callback):
            def on_batch_end(self, trainer, logs):
                trainer.state.stop_training = True
                trainer.state.stop_reason = "diverged"

        trainer = make_trainer(callbacks=[StopAtFirstBatch()])
        trainer.fit(5)
        # the partial epoch is not recorded and the run ends immediately
        assert trainer.state.batch == 1
        assert trainer.state.epoch == 0
        assert trainer.history.curve("loss") == []
        assert trainer.state.stop_reason == "diverged"

    def test_zero_batch_epoch_records_declared_metrics(self):
        class EmptyLoop(ToyLoop):
            def make_batches(self, rng, epoch):
                return iter(())

        history = make_trainer(EmptyLoop()).fit(2)
        assert history.curve("loss") == [0.0, 0.0]
        assert len(history.curve("learning_rate")) == 2

    def test_history_kwarg_conflicts_with_loss_history_callback(self):
        loop = ToyLoop()
        optimizer = Adam(list(loop.parameters()), lr=0.1)
        with pytest.raises(ValueError):
            Trainer(loop, optimizer, callbacks=[LossHistory()], history=History())

    def test_progress_logger_format(self, capsys):
        trainer = make_trainer(callbacks=[ProgressLogger("toy")])
        trainer.fit(2)
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[toy] epoch 1/2 loss=")
        assert lines[1].startswith("[toy] epoch 2/2 loss=")


class TestCheckpointResume:
    def test_resume_is_bit_identical(self, tmp_path):
        path = tmp_path / "toy_ck"
        full = ToyLoop()
        t_full = make_trainer(full)
        t_full.fit(6)

        part = ToyLoop()
        t_part = make_trainer(part, callbacks=[Checkpointer(path, every=1)])
        t_part.fit(3)

        resumed = ToyLoop()
        t_resumed = make_trainer(resumed)
        history = t_resumed.resume(path, epochs=6)

        assert history.curve("loss") == t_full.history.curve("loss")
        np.testing.assert_array_equal(resumed.model.weight.data, full.model.weight.data)
        np.testing.assert_array_equal(resumed.model.bias.data, full.model.bias.data)
        assert t_resumed.state.epoch == 6
        assert t_resumed.state.step == t_full.state.step

    def test_resume_restores_optimizer_scheduler_and_rng(self, tmp_path):
        path = tmp_path / "toy_ck"
        loop = ToyLoop()
        optimizer = Adam(list(loop.parameters()), lr=0.1)
        scheduler = StepLR(optimizer, step_size=1, gamma=0.5)
        trainer = Trainer(
            loop, optimizer, scheduler=scheduler, callbacks=[Checkpointer(path)]
        )
        trainer.fit(2)
        rng_after = get_rng_state(loop.rng)

        fresh_loop = ToyLoop()
        fresh_optimizer = Adam(list(fresh_loop.parameters()), lr=0.1)
        fresh_scheduler = StepLR(fresh_optimizer, step_size=1, gamma=0.5)
        fresh = Trainer(fresh_loop, fresh_optimizer, scheduler=fresh_scheduler)
        fresh.load_checkpoint(path)

        assert fresh_optimizer.lr == optimizer.lr
        assert fresh_optimizer._step == optimizer._step
        for m_a, m_b in zip(fresh_optimizer._m, optimizer._m):
            np.testing.assert_array_equal(m_a, m_b)
        assert fresh_scheduler.last_epoch == 2
        assert get_rng_state(fresh_loop.rng) == rng_after
        assert fresh.history.curve("loss") == trainer.history.curve("loss")

    def test_checkpoint_rejects_estimator_load(self, tmp_path):
        path = tmp_path / "toy_ck"
        trainer = make_trainer(callbacks=[Checkpointer(path)])
        trainer.fit(1)
        with pytest.raises(BundleFormatError, match="Trainer.resume"):
            load_estimator(path)

    def test_load_checkpoint_rejects_non_checkpoint(self, tmp_path):
        from repro.api.bundle import save_bundle

        path = save_bundle(tmp_path / "not_ck", {"x": np.zeros(3)}, {"estimator": "x"})
        with pytest.raises(BundleFormatError):
            make_trainer().load_checkpoint(path)


class TestStateHelpers:
    def test_progress_round_trip(self):
        state = TrainState(epoch=3, step=7, batch=11)
        restored = TrainState()
        restored.restore_progress(state.progress())
        assert (restored.epoch, restored.step, restored.batch) == (3, 7, 11)

    def test_rng_state_round_trip(self):
        a = new_rng(5)
        a.integers(0, 100, size=13)
        snapshot = get_rng_state(a)
        expected = a.normal(size=4)
        b = new_rng(999)
        set_rng_state(b, snapshot)
        np.testing.assert_array_equal(b.normal(size=4), expected)

    def test_optimizer_state_shape_checks(self):
        loop = ToyLoop()
        optimizer = Adam(list(loop.parameters()), lr=0.1)
        state = optimizer.state_dict()
        state["m"] = state["m"][:-1]
        with pytest.raises(ValueError):
            optimizer.load_state_dict(state)
