"""Tests for the autograd Tensor: forward values and gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import Tensor, no_grad


def numerical_gradient(fn, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of ``array``."""
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        index = it.multi_index
        original = array[index]
        array[index] = original + eps
        upper = fn()
        array[index] = original - eps
        lower = fn()
        array[index] = original
        grad[index] = (upper - lower) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(build_loss, *arrays, tolerance=1e-5):
    """Compare autograd gradients against numerical gradients."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    loss = build_loss(*tensors)
    loss.backward()
    for tensor, array in zip(tensors, arrays):
        numeric = numerical_gradient(lambda: float(build_loss(*[Tensor(x) for x in arrays]).data), array)
        assert tensor.grad is not None
        np.testing.assert_allclose(tensor.grad, numeric, atol=tolerance, rtol=1e-4)


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.data.dtype == np.float64

    def test_construction_from_tensor_copies_data_reference(self):
        base = Tensor([1.0, 2.0])
        wrapped = Tensor(base)
        np.testing.assert_array_equal(wrapped.data, base.data)

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_item_on_scalar(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)

    def test_detach_breaks_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_zeros_and_ones(self):
        assert np.all(Tensor.zeros((2, 3)).data == 0)
        assert np.all(Tensor.ones((2, 3)).data == 1)

    def test_len_and_repr(self):
        t = Tensor(np.zeros((4, 2)))
        assert len(t) == 4
        assert "shape=(4, 2)" in repr(t)

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            t.backward()

    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 3
        assert not out.requires_grad


class TestArithmeticGradients:
    def test_add_broadcast(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4,))
        check_gradient(lambda x, y: (x + y).sum(), a, b)

    def test_sub_and_neg(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(2, 3))
        check_gradient(lambda x, y: (x - y).sum(), a, b)

    def test_mul_broadcast(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(3, 1))
        check_gradient(lambda x, y: (x * y).sum(), a, b)

    def test_div(self, rng):
        a = rng.normal(size=(3, 3))
        b = rng.normal(size=(3, 3)) + 3.0
        check_gradient(lambda x, y: (x / y).sum(), a, b)

    def test_scalar_ops(self, rng):
        a = rng.normal(size=(4,))
        check_gradient(lambda x: (x * 2.5 + 1.0).sum(), a)
        check_gradient(lambda x: (3.0 - x).sum(), a)
        check_gradient(lambda x: (1.0 / (x + 5.0)).sum(), a)

    def test_pow(self, rng):
        a = np.abs(rng.normal(size=(5,))) + 0.5
        check_gradient(lambda x: (x**3).sum(), a)
        check_gradient(lambda x: (x**0.5).sum(), a)

    def test_matmul_2d(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        check_gradient(lambda x, y: (x @ y).sum(), a, b)

    def test_matmul_batched(self, rng):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(2, 4, 3))
        check_gradient(lambda x, y: (x @ y).sum(), a, b)

    def test_matmul_vector(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4,))
        check_gradient(lambda x, y: (x @ y).sum(), a, b)

    def test_getitem(self, rng):
        a = rng.normal(size=(4, 5))
        check_gradient(lambda x: (x[1:3, ::2] * 2).sum(), a)

    def test_gradient_accumulates_when_reused(self):
        a = Tensor([2.0], requires_grad=True)
        loss = a * 3 + a * 4
        loss.backward()
        assert a.grad[0] == pytest.approx(7.0)


class TestElementwiseGradients:
    def test_exp_log(self, rng):
        a = np.abs(rng.normal(size=(4,))) + 0.5
        check_gradient(lambda x: x.exp().sum(), a)
        check_gradient(lambda x: x.log().sum(), a)

    def test_relu(self, rng):
        a = rng.normal(size=(10,)) + 0.05  # avoid the kink exactly at 0
        check_gradient(lambda x: x.relu().sum(), a)

    def test_tanh_sigmoid(self, rng):
        a = rng.normal(size=(6,))
        check_gradient(lambda x: x.tanh().sum(), a)
        check_gradient(lambda x: x.sigmoid().sum(), a)

    def test_gelu(self, rng):
        a = rng.normal(size=(6,))
        check_gradient(lambda x: x.gelu().sum(), a, tolerance=1e-4)

    def test_abs(self, rng):
        a = rng.normal(size=(6,)) + 0.1
        check_gradient(lambda x: x.abs().sum(), a)

    def test_clamp_min(self, rng):
        a = rng.normal(size=(8,))
        check_gradient(lambda x: x.clamp_min(0.1).sum(), a)

    def test_sqrt_matches_pow(self, rng):
        a = np.abs(rng.normal(size=(5,))) + 0.2
        t = Tensor(a)
        np.testing.assert_allclose(t.sqrt().data, np.sqrt(a))


class TestReductionsAndShapes:
    def test_sum_axis(self, rng):
        a = rng.normal(size=(3, 4, 5))
        check_gradient(lambda x: (x.sum(axis=1) ** 2).sum(), a)

    def test_mean(self, rng):
        a = rng.normal(size=(3, 4))
        check_gradient(lambda x: (x.mean(axis=0) ** 2).sum(), a)
        assert Tensor(a).mean().item() == pytest.approx(a.mean())

    def test_var(self, rng):
        a = rng.normal(size=(4, 6))
        t = Tensor(a)
        np.testing.assert_allclose(t.var(axis=1).data, a.var(axis=1), atol=1e-12)

    def test_max_min(self, rng):
        a = rng.normal(size=(3, 5))
        t = Tensor(a)
        np.testing.assert_allclose(t.max(axis=1).data, a.max(axis=1))
        np.testing.assert_allclose(t.min(axis=1).data, a.min(axis=1))
        check_gradient(lambda x: x.max(axis=1).sum(), a)

    def test_reshape_and_flatten(self, rng):
        a = rng.normal(size=(2, 3, 4))
        check_gradient(lambda x: (x.reshape(6, 4) ** 2).sum(), a)
        assert Tensor(a).flatten(start_dim=1).shape == (2, 12)

    def test_transpose(self, rng):
        a = rng.normal(size=(2, 3, 4))
        check_gradient(lambda x: (x.transpose(1, 0, 2) ** 2).sum(), a)
        assert Tensor(a).T.shape == (4, 3, 2)

    def test_swapaxes_squeeze_unsqueeze(self, rng):
        a = rng.normal(size=(2, 1, 4))
        t = Tensor(a)
        assert t.swapaxes(0, 2).shape == (4, 1, 2)
        assert t.squeeze(1).shape == (2, 4)
        assert t.unsqueeze(0).shape == (1, 2, 1, 4)
        with pytest.raises(ValueError):
            t.squeeze(0)

    def test_concat_and_stack(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(4, 3))
        check_gradient(lambda x, y: (Tensor.concat([x, y], axis=0) ** 2).sum(), a, b)
        stacked = Tensor.stack([Tensor(a), Tensor(a)], axis=0)
        assert stacked.shape == (2, 2, 3)

    def test_topological_order_diamond_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = a * 2
        c = a * 3
        d = (b + c).sum()
        d.backward()
        np.testing.assert_allclose(a.grad, [5.0, 5.0])
