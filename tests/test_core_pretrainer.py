"""Tests for the AimTS pre-training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AimTSConfig
from repro.core.pretrainer import AimTSPretrainer, build_augmentation_bank
from repro.data import load_pretraining_corpus
from repro.utils.seeding import new_rng


def _tiny_config(**overrides):
    base = dict(
        repr_dim=12,
        proj_dim=6,
        hidden_channels=6,
        depth=1,
        panel_size=16,
        series_length=32,
        batch_size=6,
        epochs=1,
        seed=0,
    )
    base.update(overrides)
    return AimTSConfig(**base)


@pytest.fixture(scope="module")
def tiny_pool():
    corpus = load_pretraining_corpus("monash", n_datasets=3, seed=0)
    from repro.data.loaders import build_pretraining_pool

    return build_pretraining_pool(corpus, length=32, n_variables=1, max_samples=18, seed=0)


class TestBuildAugmentationBank:
    def test_default_names(self):
        config = _tiny_config()
        bank = build_augmentation_bank(config, new_rng(0))
        assert bank.names == list(config.augmentation_names)

    def test_unknown_name_rejected(self):
        config = _tiny_config(augmentation_names=("jitter", "quantum_flip"))
        with pytest.raises(KeyError):
            build_augmentation_bank(config, new_rng(0))


class TestComputeBatchLoss:
    def test_all_components_present(self, tiny_pool):
        pretrainer = AimTSPretrainer(_tiny_config())
        losses = pretrainer.compute_batch_loss(tiny_pool[:6])
        assert set(losses) == {"prototype", "series_image", "total"}
        assert np.isfinite(losses["total"].item())

    def test_prototype_only(self, tiny_pool):
        pretrainer = AimTSPretrainer(_tiny_config(use_series_image_loss=False))
        losses = pretrainer.compute_batch_loss(tiny_pool[:6])
        assert "series_image" not in losses
        assert losses["total"].item() == pytest.approx(losses["prototype"].item())

    def test_series_image_only(self, tiny_pool):
        pretrainer = AimTSPretrainer(_tiny_config(use_prototype_loss=False))
        losses = pretrainer.compute_batch_loss(tiny_pool[:6])
        assert "prototype" not in losses

    def test_both_disabled_raises(self, tiny_pool):
        pretrainer = AimTSPretrainer(
            _tiny_config(use_prototype_loss=False, use_series_image_loss=False)
        )
        with pytest.raises(RuntimeError):
            pretrainer.compute_batch_loss(tiny_pool[:6])

    def test_total_loss_differentiable_end_to_end(self, tiny_pool):
        pretrainer = AimTSPretrainer(_tiny_config())
        losses = pretrainer.compute_batch_loss(tiny_pool[:6])
        losses["total"].backward()
        grads = [p.grad for p in pretrainer.ts_encoder.parameters()]
        assert all(g is not None for g in grads)
        image_grads = [p.grad for p in pretrainer.image_encoder.parameters()]
        assert all(g is not None for g in image_grads)


class TestFit:
    def test_fit_records_history(self, tiny_pool):
        pretrainer = AimTSPretrainer(_tiny_config(epochs=2))
        history = pretrainer.fit(tiny_pool)
        assert len(history.total_loss) == 2
        assert history.last()["total_loss"] == history.total_loss[-1]
        assert all(np.isfinite(v) for v in history.total_loss)

    def test_fit_accepts_corpus_of_datasets(self):
        corpus = load_pretraining_corpus("monash", n_datasets=2, seed=0)
        pretrainer = AimTSPretrainer(_tiny_config())
        history = pretrainer.fit(corpus, max_samples=12)
        assert len(history.total_loss) == 1

    def test_learning_rate_decays_with_steplr(self, tiny_pool):
        pretrainer = AimTSPretrainer(_tiny_config(epochs=2, lr_step_size=1, lr_gamma=0.5))
        history = pretrainer.fit(tiny_pool)
        assert history.learning_rate[0] == pytest.approx(pretrainer.config.learning_rate)

    def test_loss_decreases_over_epochs(self, tiny_pool):
        pretrainer = AimTSPretrainer(_tiny_config(epochs=3, learning_rate=3e-3))
        history = pretrainer.fit(tiny_pool)
        assert history.total_loss[-1] < history.total_loss[0]

    def test_encode_shape_after_fit(self, tiny_pool):
        pretrainer = AimTSPretrainer(_tiny_config())
        pretrainer.fit(tiny_pool)
        representations = pretrainer.encode(tiny_pool[:7])
        assert representations.shape == (7, pretrainer.config.repr_dim)

    def test_empty_history_last(self):
        pretrainer = AimTSPretrainer(_tiny_config())
        assert pretrainer.history.last() == {}

    def test_ablation_switches_run(self, tiny_pool):
        for overrides in (
            {"temperature_mode": "fixed"},
            {"mixup_mode": "none"},
            {"mixup_mode": "linear"},
            {"prototype_reduction": "median"},
            {"use_intra_loss": False},
        ):
            pretrainer = AimTSPretrainer(_tiny_config(**overrides))
            losses = pretrainer.compute_batch_loss(tiny_pool[:6])
            assert np.isfinite(losses["total"].item())
