"""Tests for the configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.core.config import AimTSConfig, FineTuneConfig


class TestAimTSConfig:
    def test_defaults_match_paper_settings(self):
        config = AimTSConfig()
        assert config.seed == 3407
        assert config.batch_size == 16
        assert config.learning_rate == pytest.approx(7e-3)
        assert config.epochs == 2
        assert config.n_augmentations == 5
        assert config.temperature_mode == "adaptive"
        assert config.mixup_mode == "geodesic"

    def test_n_augmentations_tracks_names(self):
        config = AimTSConfig(augmentation_names=("jitter", "scaling"))
        assert config.n_augmentations == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"repr_dim": 0},
            {"batch_size": -1},
            {"learning_rate": 0.0},
            {"alpha": 1.5},
            {"beta": -0.1},
            {"gamma": 0.0},
            {"tau0": 0.0},
            {"temperature_mode": "magic"},
            {"mixup_mode": "magic"},
            {"prototype_reduction": "max"},
            {"augmentation_names": ()},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AimTSConfig(**kwargs)


class TestFineTuneConfig:
    def test_defaults(self):
        config = FineTuneConfig()
        assert config.learning_rate == pytest.approx(1e-3)
        assert config.epochs == 20
        assert not config.freeze_encoder

    @pytest.mark.parametrize(
        "kwargs",
        [{"learning_rate": 0.0}, {"epochs": 0}, {"batch_size": 0}, {"dropout": 1.5}],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FineTuneConfig(**kwargs)
