"""Tests for channel-independent aggregation modes and the adaptive classifier head.

The paper encodes every variable independently with shared weights
(Section V-A3).  Downstream, the task-specific classifier may either see the
concatenation of the per-variable representations ("concat", the default used
by the benchmark harness) or their mean ("mean", used during pre-training so
prototype shapes do not depend on the corpus dimensionality).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BaselineConfig, TS2Vec
from repro.core import AimTS, AimTSConfig, FineTuneConfig, FineTuner
from repro.data.archives import make_dataset
from repro.encoders import TSEncoder


class TestEncoderAggregationModes:
    def test_concat_output_dimension(self, rng):
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=1, channel_aggregation="concat", rng=0)
        out = encoder(rng.normal(size=(4, 3, 40)))
        assert out.shape == (4, 48)
        assert encoder.output_dim(3) == 48
        assert encoder.output_dim(1) == 16

    def test_mean_output_dimension(self, rng):
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=1, channel_aggregation="mean", rng=0)
        assert encoder(rng.normal(size=(4, 3, 40))).shape == (4, 16)
        assert encoder.output_dim(3) == 16

    def test_univariate_concat_and_mean_agree(self, rng):
        x = rng.normal(size=(3, 1, 40))
        concat_encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=1, channel_aggregation="concat", rng=5)
        mean_encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=1, channel_aggregation="mean", rng=5)
        np.testing.assert_allclose(concat_encoder(x).data, mean_encoder(x).data, atol=1e-12)

    def test_mean_is_average_of_concat_blocks(self, rng):
        x = rng.normal(size=(2, 3, 40))
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=1, channel_aggregation="concat", rng=7)
        concat = encoder(x).data.reshape(2, 3, 16)
        encoder.channel_aggregation = "mean"
        mean = encoder(x).data
        np.testing.assert_allclose(concat.mean(axis=1), mean, atol=1e-12)

    def test_invalid_aggregation_rejected(self):
        with pytest.raises(ValueError):
            TSEncoder(channel_aggregation="max")

    def test_non_channel_independent_ignores_aggregation(self, rng):
        encoder = TSEncoder(
            in_channels=3, hidden_channels=8, repr_dim=16, depth=1,
            channel_independent=False, channel_aggregation="concat", rng=0,
        )
        assert encoder(rng.normal(size=(2, 3, 40))).shape == (2, 16)
        assert encoder.output_dim(3) == 16


class TestFineTunerAdaptiveHead:
    def test_classifier_built_lazily_with_correct_input_dim(self, small_multivariate_dataset):
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=1, channel_aggregation="concat", rng=0)
        finetuner = FineTuner(encoder, small_multivariate_dataset.n_classes, FineTuneConfig(epochs=1, seed=0))
        assert finetuner.classifier is None
        finetuner.fit(small_multivariate_dataset.train)
        assert finetuner.classifier is not None
        expected_in = 16 * small_multivariate_dataset.n_variables
        assert finetuner.classifier.network.in_features == expected_in

    def test_predict_before_fit_raises(self, small_dataset):
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=1, rng=0)
        finetuner = FineTuner(encoder, 2, FineTuneConfig(epochs=1, seed=0))
        with pytest.raises(RuntimeError):
            finetuner.predict(small_dataset.test.X)

    def test_concat_learns_multivariate_task_better_than_chance(self, small_multivariate_dataset):
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=2, channel_aggregation="concat", rng=0)
        finetuner = FineTuner(
            encoder, small_multivariate_dataset.n_classes, FineTuneConfig(epochs=40, learning_rate=3e-3, seed=0)
        )
        result = finetuner.fit_and_evaluate(small_multivariate_dataset)
        assert result.accuracy > 1.0 / small_multivariate_dataset.n_classes + 0.1


class TestConfigIntegration:
    def test_aimts_config_validates_aggregation(self):
        assert AimTSConfig(channel_aggregation="mean").channel_aggregation == "mean"
        with pytest.raises(ValueError):
            AimTSConfig(channel_aggregation="median")

    def test_baseline_config_validates_aggregation(self):
        assert BaselineConfig(channel_aggregation="mean").channel_aggregation == "mean"
        with pytest.raises(ValueError):
            BaselineConfig(channel_aggregation="sum")

    def test_pretrainer_encoder_uses_mean_but_finetuner_gets_config_choice(self):
        config = AimTSConfig(
            repr_dim=12, proj_dim=6, hidden_channels=6, depth=1, panel_size=16,
            series_length=32, batch_size=4, epochs=1, seed=0, channel_aggregation="concat",
        )
        model = AimTS(config)
        assert model.pretrainer.ts_encoder.channel_aggregation == "mean"
        finetuner = model.make_finetuner(n_classes=2)
        assert finetuner.encoder.channel_aggregation == "concat"
        # the pre-training encoder itself is left untouched by the copy
        assert model.pretrainer.ts_encoder.channel_aggregation == "mean"

    def test_baseline_finetune_applies_configured_aggregation(self, small_multivariate_dataset):
        config = BaselineConfig(
            repr_dim=12, proj_dim=6, hidden_channels=6, depth=1, series_length=48,
            batch_size=6, epochs=1, seed=0, channel_aggregation="concat",
        )
        baseline = TS2Vec(config)
        result = baseline.fine_tune(small_multivariate_dataset, FineTuneConfig(epochs=2, seed=0))
        assert 0.0 <= result.accuracy <= 1.0
        # the baseline's own pre-training encoder keeps the "mean" default
        assert baseline.encoder.channel_aggregation == "mean"
