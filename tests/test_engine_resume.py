"""Migration guarantees of the unified training engine.

Two families of tests:

* **Seed-curve reproduction** — the loss curves below were recorded by
  running the *pre-engine* (seed) epoch loops at these exact configs; every
  migrated loop must reproduce them bit-for-bit (``==`` on floats, no
  tolerance), proving the engine consumes the RNG streams in the seed order.
* **Bit-identical resume** — a pre-train killed after epoch *k* and resumed
  from a :class:`repro.engine.Checkpointer` bundle must produce the same
  remaining per-epoch losses and the same final weights as an uninterrupted
  run (optimizer moments, scheduler step and per-epoch RNG streams restored).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import BaselineConfig
from repro.baselines.ts2vec import TS2Vec
from repro.core.config import AimTSConfig, FineTuneConfig
from repro.core.finetuner import FineTuner
from repro.core.pretrainer import AimTSPretrainer, PretrainHistory
from repro.data.archives import make_dataset
from repro.encoders import TSEncoder
from repro.engine import Checkpointer, EarlyStopping, History, LossCurve

# --------------------------------------------------------------------------- #
# golden curves recorded from the seed (pre-engine) implementations
# --------------------------------------------------------------------------- #

SEED_PRETRAIN_TOTAL = [4.376210883707947, 3.9475057560849405]
SEED_PRETRAIN_PROTO = [2.274855864053759, 2.033682017177842]
SEED_PRETRAIN_SI = [2.101355019654188, 1.9138237389070991]
SEED_PRETRAIN_LR = [0.007, 0.0035]
SEED_FINETUNE_LOSS = [2.240925270025744, 1.7985286662816256, 1.4564918385780103]
SEED_TS2VEC_LOSS = [2.3196387793030238, 2.381957275648807]


def pretrain_config(**overrides) -> AimTSConfig:
    base = dict(
        repr_dim=12,
        proj_dim=6,
        hidden_channels=6,
        depth=1,
        panel_size=16,
        series_length=32,
        batch_size=6,
        epochs=2,
        seed=0,
    )
    base.update(overrides)
    return AimTSConfig(**base)


def make_pool() -> np.ndarray:
    return np.random.default_rng(0).normal(size=(18, 1, 32))


class TestSeedCurveReproduction:
    """Every migrated loop reproduces its seed loss curve bit-for-bit."""

    def test_aimts_pretrain_curves(self):
        history = AimTSPretrainer(pretrain_config()).fit(make_pool())
        assert history.total_loss == SEED_PRETRAIN_TOTAL
        assert history.prototype_loss == SEED_PRETRAIN_PROTO
        assert history.series_image_loss == SEED_PRETRAIN_SI
        assert history.learning_rate == SEED_PRETRAIN_LR

    def test_finetuner_curve(self):
        dataset = make_dataset(
            "unit_ecg", "ecg", n_classes=2, n_train=16, n_test=24,
            length=48, n_variables=1, seed=0,
        )
        encoder = TSEncoder(
            hidden_channels=8, repr_dim=16, depth=1, channel_independent=True, rng=0
        )
        finetuner = FineTuner(
            encoder,
            dataset.n_classes,
            FineTuneConfig(epochs=3, batch_size=8, classifier_hidden_dim=16, seed=0),
        )
        curve = finetuner.fit(dataset.train)
        assert list(curve) == SEED_FINETUNE_LOSS

    def test_ts2vec_pretrain_curve(self):
        baseline = TS2Vec(
            BaselineConfig(
                repr_dim=12, proj_dim=6, hidden_channels=6, depth=1,
                series_length=32, batch_size=6, epochs=2, seed=0,
            )
        )
        curve = baseline.pretrain(make_pool(), epochs=2)
        assert list(curve) == SEED_TS2VEC_LOSS


class TestHistoryShims:
    """Old return shapes survive as views over the engine history."""

    def test_pretrain_history_is_engine_view(self):
        history = AimTSPretrainer(pretrain_config(epochs=1)).fit(make_pool())
        assert isinstance(history, PretrainHistory)
        engine = history.engine_history
        assert isinstance(engine, History)
        assert history.total_loss == engine.curve("loss")
        assert history.last()["total_loss"] == engine.last()["loss"]

    def test_finetune_curve_is_list_and_structured(self):
        dataset = make_dataset(
            "unit_ecg", "ecg", n_classes=2, n_train=12, n_test=8,
            length=32, n_variables=1, seed=0,
        )
        encoder = TSEncoder(
            hidden_channels=6, repr_dim=8, depth=1, channel_independent=True, rng=0
        )
        finetuner = FineTuner(
            encoder, dataset.n_classes, FineTuneConfig(epochs=2, batch_size=8, seed=0)
        )
        curve = finetuner.fit(dataset.train)
        assert isinstance(curve, list)
        assert isinstance(curve, LossCurve)
        assert len(curve) == 2
        assert curve.last()["loss"] == curve[-1]
        assert curve.history.curve("learning_rate") == [
            finetuner.config.learning_rate
        ] * 2

    def test_pretrain_pool_too_small_records_zero_losses(self):
        # every batch is filtered by the contrastive two-sample minimum; the
        # seed loop recorded 0.0 per epoch and the engine keeps that shape
        history = AimTSPretrainer(pretrain_config()).fit(np.zeros((1, 1, 32)))
        assert history.total_loss == [0.0, 0.0]
        assert history.prototype_loss == [0.0, 0.0]
        assert history.series_image_loss == [0.0, 0.0]
        assert len(history.learning_rate) == 2

    def test_baseline_curve_is_list_and_structured(self):
        baseline = TS2Vec(
            BaselineConfig(
                repr_dim=8, proj_dim=4, hidden_channels=4, depth=1,
                series_length=32, batch_size=6, epochs=1, seed=0,
            )
        )
        curve = baseline.pretrain(make_pool(), epochs=1)
        assert isinstance(curve, list) and isinstance(curve, LossCurve)
        assert curve.last()["loss"] == curve[-1]


class TestBitIdenticalResume:
    def test_pretrain_resumes_bit_identically(self, tmp_path):
        pool = make_pool()
        config = pretrain_config()

        uninterrupted = AimTSPretrainer(config)
        uninterrupted.fit(pool, epochs=4)

        # "kill" a second run after epoch 2, checkpointing every epoch
        checkpoint = tmp_path / "pretrain_ck"
        killed = AimTSPretrainer(config)
        killed.fit(pool, epochs=2, callbacks=[Checkpointer(checkpoint)])

        resumed = AimTSPretrainer(config)
        history = resumed.fit(pool, epochs=4, resume_from=checkpoint)

        # the remaining epochs' losses are the uninterrupted run's, bit-for-bit
        assert history.total_loss == uninterrupted.history.total_loss
        assert history.prototype_loss == uninterrupted.history.prototype_loss
        assert history.series_image_loss == uninterrupted.history.series_image_loss
        assert history.learning_rate == uninterrupted.history.learning_rate

        # final weights of every pre-training module are bit-identical
        full_modules = uninterrupted.trainer.loop.named_modules()
        for name, module in resumed.trainer.loop.named_modules().items():
            reference = full_modules[name].state_dict()
            for key, value in module.state_dict().items():
                np.testing.assert_array_equal(value, reference[key], err_msg=f"{name}.{key}")

        # and the optimizer advanced the same number of steps
        assert resumed.trainer.state.step == uninterrupted.trainer.state.step

    def test_pipelined_pretrain_resumes_bit_identically(self, tmp_path):
        pool = make_pool()
        config = pretrain_config(n_producers=1, prefetch_depth=2)

        uninterrupted = AimTSPretrainer(config)
        uninterrupted.fit(pool, epochs=4)
        uninterrupted.shutdown_workers()

        checkpoint = tmp_path / "pipelined_ck"
        killed = AimTSPretrainer(config)
        killed.fit(pool, epochs=2, callbacks=[Checkpointer(checkpoint)])
        killed.shutdown_workers()

        # resume from a *sequential* config: the checkpoint's recorded
        # pipeline cursor (producer count, prefetch depth, step-keyed seed
        # schedule) wins, so the run restarts pipelined and loss-for-loss
        # identical to the uninterrupted pipelined run
        resumed = AimTSPretrainer(pretrain_config())
        history = resumed.fit(pool, epochs=4, resume_from=checkpoint)
        assert resumed.trainer.n_producers == 1
        assert resumed.trainer.prefetch_depth == 2
        resumed.shutdown_workers()

        assert history.total_loss == uninterrupted.history.total_loss
        assert history.prototype_loss == uninterrupted.history.prototype_loss
        assert history.series_image_loss == uninterrupted.history.series_image_loss

        full_modules = uninterrupted.trainer.loop.named_modules()
        for name, module in resumed.trainer.loop.named_modules().items():
            reference = full_modules[name].state_dict()
            for key, value in module.state_dict().items():
                np.testing.assert_array_equal(value, reference[key], err_msg=f"{name}.{key}")

    def test_sequential_checkpoint_restores_sequential_mode(self, tmp_path):
        pool = make_pool()
        checkpoint = tmp_path / "seq_ck"
        first = AimTSPretrainer(pretrain_config())
        first.fit(pool, epochs=2, callbacks=[Checkpointer(checkpoint)])

        # a pipelined config resuming a sequential checkpoint drops back to
        # the classic path — mixing the two schedules would corrupt the curve
        resumed = AimTSPretrainer(pretrain_config(n_producers=1, prefetch_depth=2))
        history = resumed.fit(pool, epochs=4, resume_from=checkpoint)
        assert resumed.trainer.n_producers == 0
        resumed.shutdown_workers()

        uninterrupted = AimTSPretrainer(pretrain_config())
        uninterrupted.fit(pool, epochs=4)
        assert history.total_loss == uninterrupted.history.total_loss

    def test_resume_skips_completed_epochs(self, tmp_path):
        pool = make_pool()
        checkpoint = tmp_path / "ck"
        first = AimTSPretrainer(pretrain_config())
        first.fit(pool, epochs=2, callbacks=[Checkpointer(checkpoint)])

        resumed = AimTSPretrainer(pretrain_config())
        history = resumed.fit(pool, epochs=2, resume_from=checkpoint)
        # nothing left to run: the restored history comes back unchanged
        assert history.total_loss == first.history.total_loss
        assert resumed.trainer.state.epoch == 2


class TestEngineCapabilitiesOnRealLoops:
    def test_pretrain_early_stopping_on_contrastive_loss(self):
        pretrainer = AimTSPretrainer(pretrain_config())
        history = pretrainer.fit(
            make_pool(),
            epochs=10,
            callbacks=[EarlyStopping("prototype", patience=1, min_delta=10.0)],
        )
        # an impossible min_delta stops after best + patience epochs
        assert len(history.total_loss) == 2
        assert pretrainer.trainer.state.stop_training

    def test_finetune_early_stopping_reports_actual_epochs(self):
        dataset = make_dataset(
            "unit_ecg", "ecg", n_classes=2, n_train=12, n_test=8,
            length=32, n_variables=1, seed=0,
        )
        encoder = TSEncoder(
            hidden_channels=6, repr_dim=8, depth=1, channel_independent=True, rng=0
        )
        finetuner = FineTuner(
            encoder, dataset.n_classes, FineTuneConfig(epochs=30, batch_size=8, seed=0)
        )
        curve = finetuner.fit(
            dataset.train,
            callbacks=[EarlyStopping("loss", patience=1, min_delta=100.0)],
        )
        assert len(curve) == 2 < finetuner.config.epochs

    def test_fit_and_evaluate_reports_epochs_actually_run(self):
        dataset = make_dataset(
            "unit_ecg", "ecg", n_classes=2, n_train=12, n_test=8,
            length=32, n_variables=1, seed=0,
        )
        encoder = TSEncoder(
            hidden_channels=6, repr_dim=8, depth=1, channel_independent=True, rng=0
        )
        finetuner = FineTuner(
            encoder, dataset.n_classes, FineTuneConfig(epochs=2, batch_size=8, seed=0)
        )
        result = finetuner.fit_and_evaluate(dataset)
        assert result.n_epochs == 2 == len(result.history)

    def test_closed_form_estimators_report_zero_epochs(self):
        from repro.baselines.rocket import Rocket
        from repro.baselines.supervised import LinearClassifier

        dataset = make_dataset(
            "unit_ecg", "ecg", n_classes=2, n_train=12, n_test=8,
            length=32, n_variables=1, seed=0,
        )
        for estimator in (Rocket(n_kernels=20), LinearClassifier()):
            result = estimator.fine_tune(dataset)
            assert result.n_epochs == 0
