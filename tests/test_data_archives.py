"""Tests for the dataset containers, archives, registry, loaders and few-shot sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    BatchIterator,
    DatasetSplit,
    TimeSeriesDataset,
    dataset_names,
    few_shot_subset,
    load_archive,
    load_dataset,
    load_pretraining_corpus,
    pad_or_truncate,
    z_normalize,
)
from repro.data.archives import (
    FEWSHOT_DATASETS,
    NAMED_DATASETS,
    SINGLE_SOURCE_DATASETS,
    UEA10_TABLE2,
    make_dataset,
    make_monash_like_corpus,
    make_named_dataset,
    make_ucr_like_archive,
    make_uea_like_archive,
)
from repro.data.loaders import build_pretraining_pool, select_variables


class TestDatasetContainers:
    def test_split_validation(self, rng):
        with pytest.raises(ValueError):
            DatasetSplit(rng.normal(size=(4, 8)))  # not 3-D
        with pytest.raises(ValueError):
            DatasetSplit(rng.normal(size=(4, 1, 8)), np.zeros(3))  # label mismatch

    def test_split_properties_and_subset(self, rng):
        split = DatasetSplit(rng.normal(size=(6, 2, 10)), np.arange(6) % 2)
        assert len(split) == 6
        assert split.n_variables == 2 and split.length == 10
        subset = split.subset(np.array([0, 2, 4]))
        assert len(subset) == 3
        np.testing.assert_array_equal(subset.y, [0, 0, 0])

    def test_dataset_validation_checks_labels(self, rng):
        train = DatasetSplit(rng.normal(size=(4, 1, 8)), np.array([0, 1, 2, 3]))
        test = DatasetSplit(rng.normal(size=(4, 1, 8)), np.array([0, 1, 2, 3]))
        with pytest.raises(ValueError):
            TimeSeriesDataset("bad", "ecg", train, test, n_classes=2)

    def test_dataset_describe(self, small_dataset):
        info = small_dataset.describe()
        assert info["name"] == "unit_ecg"
        assert info["n_classes"] == 2
        assert not small_dataset.is_multivariate


class TestMakeDataset:
    def test_train_test_disjoint_but_same_templates(self):
        dataset = make_dataset("t", "ecg", n_classes=2, n_train=10, n_test=12, length=32, seed=0)
        assert len(dataset.train) == 10 and len(dataset.test) == 12
        assert not np.allclose(dataset.train.X[:10], dataset.test.X[:10])

    def test_deterministic_given_seed(self):
        a = make_dataset("t", "motion", n_classes=3, n_train=8, n_test=8, length=32, n_variables=2, seed=5)
        b = make_dataset("t", "motion", n_classes=3, n_train=8, n_test=8, length=32, n_variables=2, seed=5)
        np.testing.assert_array_equal(a.train.X, b.train.X)

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            make_dataset("t", "nope", n_classes=2, n_train=4, n_test=4, length=16)


class TestArchives:
    def test_ucr_like_archive_is_univariate_and_heterogeneous(self):
        archive = make_ucr_like_archive(6, seed=0)
        assert len(archive) == 6
        assert all(ds.n_variables == 1 for ds in archive)
        lengths = {ds.length for ds in archive}
        assert len(lengths) > 1  # heterogeneous lengths

    def test_uea_like_archive_is_multivariate(self):
        archive = make_uea_like_archive(4, seed=0)
        assert all(ds.n_variables >= 2 for ds in archive)

    def test_monash_corpus_is_unlabeled(self):
        corpus = make_monash_like_corpus(5, samples_per_dataset=6, seed=0)
        assert len(corpus) == 5
        assert all(ds.train.y is None for ds in corpus)
        assert all(ds.n_classes == 0 for ds in corpus)

    def test_monash_corpus_mixes_dimensionalities(self):
        corpus = make_monash_like_corpus(19, samples_per_dataset=4, seed=0)
        n_vars = {ds.n_variables for ds in corpus}
        assert 1 in n_vars and any(v > 1 for v in n_vars)

    def test_named_dataset_lists_are_consistent(self):
        for name in UEA10_TABLE2 + FEWSHOT_DATASETS + SINGLE_SOURCE_DATASETS:
            assert name in NAMED_DATASETS

    def test_named_dataset_scaling(self):
        small = make_named_dataset("ECG200", scale=1.0)
        big = make_named_dataset("ECG200", scale=2.0)
        assert len(big.train) == 2 * len(small.train)

    def test_make_named_dataset_unknown(self):
        with pytest.raises(KeyError):
            make_named_dataset("NotADataset")


class TestRegistry:
    def test_dataset_names_nonempty(self):
        names = dataset_names()
        assert "ECG200" in names and "FD-B" in names

    def test_load_dataset_is_cached(self):
        a = load_dataset("ECG200", seed=11)
        b = load_dataset("ECG200", seed=11)
        assert a is b

    def test_load_dataset_different_seed_differs(self):
        a = load_dataset("ECG200", seed=1)
        b = load_dataset("ECG200", seed=2)
        assert not np.allclose(a.train.X, b.train.X)

    def test_load_dataset_unknown(self):
        with pytest.raises(KeyError):
            load_dataset("UnknownDataset")

    def test_load_archive_variants(self):
        assert len(load_archive("ucr", n_datasets=3)) == 3
        assert len(load_archive("uea", n_datasets=2)) == 2
        assert len(load_archive("monash", n_datasets=2)) == 2
        with pytest.raises(KeyError):
            load_archive("nonexistent")

    def test_load_pretraining_corpus_sources(self):
        for source in ("monash", "ucr", "uea"):
            corpus = load_pretraining_corpus(source, n_datasets=2)
            assert len(corpus) == 2


class TestLoaders:
    def test_z_normalize(self, rng):
        X = rng.normal(loc=10, scale=5, size=(4, 2, 50))
        normalised = z_normalize(X)
        np.testing.assert_allclose(normalised.mean(axis=-1), 0, atol=1e-9)
        np.testing.assert_allclose(normalised.std(axis=-1), 1, atol=1e-6)

    def test_z_normalize_constant_series_is_finite(self):
        X = np.ones((2, 1, 10))
        assert np.all(np.isfinite(z_normalize(X)))

    def test_pad_or_truncate_lengths(self, rng):
        X = rng.normal(size=(3, 2, 40))
        assert pad_or_truncate(X, 40).shape == (3, 2, 40)
        assert pad_or_truncate(X, 64).shape == (3, 2, 64)
        assert pad_or_truncate(X, 20).shape == (3, 2, 20)

    def test_pad_or_truncate_preserves_endpoints(self, rng):
        X = rng.normal(size=(1, 1, 20))
        out = pad_or_truncate(X, 40)
        assert out[0, 0, 0] == pytest.approx(X[0, 0, 0])
        assert out[0, 0, -1] == pytest.approx(X[0, 0, -1])

    def test_select_variables(self, rng):
        X = rng.normal(size=(2, 3, 10))
        assert select_variables(X, 3).shape == (2, 3, 10)
        assert select_variables(X, 2).shape == (2, 2, 10)
        grown = select_variables(X, 5)
        assert grown.shape == (2, 5, 10)
        np.testing.assert_array_equal(grown[:, 3], X[:, 0])

    def test_batch_iterator_covers_all_samples(self, rng):
        X = rng.normal(size=(10, 1, 8))
        y = np.arange(10)
        iterator = BatchIterator(X, y, batch_size=3, shuffle=True, seed=0)
        assert len(iterator) == 4
        seen = np.concatenate([labels for _, labels in iterator])
        assert sorted(seen.tolist()) == list(range(10))

    def test_batch_iterator_no_shuffle_keeps_order(self, rng):
        X = rng.normal(size=(5, 1, 8))
        y = np.arange(5)
        batches = list(BatchIterator(X, y, batch_size=2, shuffle=False))
        np.testing.assert_array_equal(batches[0][1], [0, 1])

    def test_batch_iterator_validation(self, rng):
        with pytest.raises(ValueError):
            BatchIterator(rng.normal(size=(4, 1, 8)), np.zeros(3))
        with pytest.raises(ValueError):
            BatchIterator(rng.normal(size=(4, 1, 8)), batch_size=0)

    def test_pad_or_truncate_matches_per_series_interp(self, rng):
        # the batched gather must agree with the old per-series np.interp loop
        for t, target in ((30, 40), (64, 40), (7, 96), (2, 5)):
            X = rng.normal(size=(4, 3, t))
            out = pad_or_truncate(X, target)
            old_grid = np.linspace(0.0, 1.0, t)
            new_grid = np.linspace(0.0, 1.0, target)
            for i in range(4):
                for j in range(3):
                    np.testing.assert_allclose(
                        out[i, j], np.interp(new_grid, old_grid, X[i, j]), atol=1e-12
                    )

    def test_pad_or_truncate_single_observation(self):
        out = pad_or_truncate(np.full((2, 1, 1), 7.0), 6)
        np.testing.assert_array_equal(out, np.full((2, 1, 6), 7.0))

    def test_z_normalize_preserves_float_dtype(self, rng):
        X32 = rng.normal(size=(2, 1, 20)).astype(np.float32)
        assert z_normalize(X32).dtype == np.float32
        assert z_normalize(X32, dtype=np.float64).dtype == np.float64
        assert z_normalize(np.arange(24).reshape(2, 1, 12)).dtype == np.float64

    def test_batch_iterator_avoids_redundant_copy(self, rng):
        X = rng.normal(size=(4, 1, 8))
        assert BatchIterator(X).X is X  # already float64: no copy
        X32 = X.astype(np.float32)
        assert BatchIterator(X32).X is X32  # floating dtype preserved
        assert BatchIterator(X32, dtype=np.float64).X.dtype == np.float64

    def test_batch_iterator_return_indices(self, rng):
        X = rng.normal(size=(10, 1, 8))
        iterator = BatchIterator(X, batch_size=4, shuffle=True, seed=0, return_indices=True)
        seen = []
        for batch, labels, indices in iterator:
            assert labels is None
            np.testing.assert_array_equal(batch, X[indices])
            seen.extend(indices.tolist())
        assert sorted(seen) == list(range(10))

    def test_build_pretraining_pool_shapes(self):
        corpus = make_monash_like_corpus(3, samples_per_dataset=5, seed=0)
        pool = build_pretraining_pool(corpus, length=32, n_variables=1)
        assert pool.shape == (15, 1, 32)
        capped = build_pretraining_pool(corpus, length=32, n_variables=2, max_samples=7, seed=0)
        assert capped.shape == (7, 2, 32)


class TestFewShot:
    def test_ratio_reduces_size_stratified(self, small_dataset):
        subset = few_shot_subset(small_dataset.train, 0.25, seed=0)
        assert len(subset) < len(small_dataset.train)
        assert set(np.unique(subset.y)) == set(np.unique(small_dataset.train.y))

    def test_min_per_class_respected(self, small_dataset):
        subset = few_shot_subset(small_dataset.train, 0.01, min_per_class=1, seed=0)
        counts = np.bincount(subset.y, minlength=small_dataset.n_classes)
        assert np.all(counts >= 1)

    def test_full_ratio_keeps_everything(self, small_dataset):
        subset = few_shot_subset(small_dataset.train, 1.0, seed=0)
        assert len(subset) == len(small_dataset.train)

    def test_invalid_inputs(self, small_dataset, rng):
        with pytest.raises(ValueError):
            few_shot_subset(small_dataset.train, 0.0)
        with pytest.raises(ValueError):
            few_shot_subset(small_dataset.train, 1.5)
        unlabeled = DatasetSplit(rng.normal(size=(4, 1, 8)))
        with pytest.raises(ValueError):
            few_shot_subset(unlabeled, 0.5)

    def test_deterministic_given_seed(self, small_dataset):
        a = few_shot_subset(small_dataset.train, 0.3, seed=9)
        b = few_shot_subset(small_dataset.train, 0.3, seed=9)
        np.testing.assert_array_equal(a.X, b.X)
