"""End-to-end integration tests covering the paper's main claims at unit scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro.augmentations import Slicing
from repro.baselines import BaselineConfig, TS2Vec
from repro.core import AimTS, AimTSConfig, FineTuneConfig
from repro.data import load_dataset, load_pretraining_corpus
from repro.data.archives import make_dataset


@pytest.fixture(scope="module")
def trained_aimts():
    config = AimTSConfig(
        repr_dim=16,
        proj_dim=8,
        hidden_channels=8,
        depth=2,
        panel_size=16,
        series_length=64,
        batch_size=8,
        epochs=1,
        seed=0,
    )
    model = AimTS(config)
    corpus = load_pretraining_corpus("monash", n_datasets=4, seed=0)
    model.pretrain(corpus, max_samples=48)
    return model


class TestMultiSourceGeneralization:
    """Pre-training on a multi-source corpus must transfer to unseen domains."""

    def test_transfers_to_named_downstream_dataset(self, trained_aimts):
        dataset = load_dataset("ECG200", seed=0)
        result = trained_aimts.fine_tune(dataset, FineTuneConfig(epochs=15, learning_rate=3e-3, seed=0))
        assert result.accuracy >= 0.75

    def test_transfers_to_multivariate_dataset(self, trained_aimts):
        dataset = make_dataset(
            "e2e_motion", "motion", n_classes=3, n_train=24, n_test=30, length=64, n_variables=3, seed=3
        )
        result = trained_aimts.fine_tune(dataset, FineTuneConfig(epochs=25, learning_rate=3e-3, seed=0))
        # three balanced classes -> chance is 1/3; the pre-trained encoder must do better
        assert result.accuracy > 0.4

    def test_representations_cluster_by_class(self, trained_aimts):
        dataset = load_dataset("ECG200", seed=0)
        representations = trained_aimts.encode(dataset.test.X)
        labels = dataset.test.y
        centroid_0 = representations[labels == 0].mean(axis=0)
        centroid_1 = representations[labels == 1].mean(axis=0)
        within = np.mean(
            [
                np.linalg.norm(representations[labels == c] - centroid, axis=1).mean()
                for c, centroid in ((0, centroid_0), (1, centroid_1))
            ]
        )
        between = np.linalg.norm(centroid_0 - centroid_1)
        assert between > 0  # the classes are not encoded identically
        assert np.isfinite(within)


class TestFewShotAdvantage:
    def test_few_shot_accuracy_above_chance(self, trained_aimts):
        dataset = load_dataset("ECG200", seed=0)
        result = trained_aimts.fine_tune(
            dataset, FineTuneConfig(epochs=15, learning_rate=3e-3, seed=0), label_ratio=0.2
        )
        assert result.accuracy > 0.5


class TestPrototypeSemanticRobustness:
    """Fig. 9: prototypes dampen augmentation-induced semantic changes."""

    def test_prototype_distance_to_original_is_smaller_than_worst_view(self, trained_aimts):
        from repro.augmentations import default_bank

        dataset = load_dataset("StarLightCurves", seed=0)
        X = dataset.test.X[:8]
        bank = default_bank(seed=0)
        views = bank.augment_batch(X)  # (G, B, M, T)
        original = trained_aimts.encode(X)
        view_representations = np.stack([trained_aimts.encode(view) for view in views])
        prototype = view_representations.mean(axis=0)
        prototype_distance = np.linalg.norm(prototype - original, axis=1).mean()
        worst_view_distance = np.linalg.norm(view_representations - original[None], axis=2).mean(axis=1).max()
        assert prototype_distance <= worst_view_distance + 1e-9

    def test_slicing_changes_series_more_than_prototype_average(self):
        dataset = load_dataset("StarLightCurves", seed=0)
        X = dataset.test.X[:6]
        sliced = Slicing(crop_ratio=0.5, seed=0)(X)
        from repro.augmentations import default_bank

        views = default_bank(seed=0).augment_batch(X)
        prototype_series = views.mean(axis=0)
        slicing_error = np.abs(sliced - X).mean()
        prototype_error = np.abs(prototype_series - X).mean()
        assert prototype_error < slicing_error


class TestCheckpointWorkflow:
    def test_full_save_load_finetune_cycle(self, trained_aimts, tmp_path):
        path = trained_aimts.save(tmp_path / "model")
        restored = AimTS(trained_aimts.config).load(path)
        dataset = make_dataset("e2e_dev", "device", n_classes=2, n_train=16, n_test=20, length=64, seed=4)
        result = restored.fine_tune(dataset, FineTuneConfig(epochs=10, seed=0))
        assert 0.0 <= result.accuracy <= 1.0


class TestBaselineComparisonShape:
    def test_aimts_not_worse_than_case_by_case_ts2vec_on_ecg(self, trained_aimts):
        dataset = load_dataset("ECG200", seed=0)
        finetune = FineTuneConfig(epochs=15, learning_rate=3e-3, seed=0)
        aimts_accuracy = trained_aimts.fine_tune(dataset, finetune).accuracy
        baseline = TS2Vec(
            BaselineConfig(repr_dim=16, proj_dim=8, hidden_channels=8, depth=2, series_length=64, batch_size=8, epochs=1, seed=0)
        )
        baseline.pretrain(dataset.train.X, epochs=1)
        baseline_accuracy = baseline.fine_tune(dataset, finetune).accuracy
        # the paper's headline claim at unit scale: multi-source AimTS is at
        # least competitive with a case-by-case contrastive baseline
        assert aimts_accuracy >= baseline_accuracy - 0.1
