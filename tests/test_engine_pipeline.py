"""Pipelined pre-training: the batch-producer ring and its determinism claims.

Three families of tests:

* **RingArena units** — slot wraparound and reuse, the acquire/release
  backpressure handshake, zero-copy descriptor views and the oversize
  (pickle) fallback of the bounded slot writer;
* **ProducerPool behaviour** — stream ordering, crash propagation with the
  remote traceback, elastic resize, idempotent close;
* **Bit-identity** — the central claim of the pipelined path: with per-step
  streams keyed by ``SeedSequence([seed, epoch, step])``, the float64 loss
  curve is *bit-identical* (``==`` on floats, no tolerance) between the
  inline sequential reference (``prefetch_depth=0``) and producer processes
  at any ``(n_producers, prefetch_depth)``, for AimTS and for a pipelined
  SSL baseline (SimCLR).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import BaselineConfig
from repro.baselines.simclr import SimCLR
from repro.baselines.ts2vec import TS2Vec
from repro.core.config import AimTSConfig
from repro.core.pretrainer import AimTSPretrainer
from repro.engine import Callback, Trainer, TrainLoop
from repro.engine.parallel import (
    ProducerPool,
    RingArena,
    WorkerError,
    _decode_batch,
    _encode_batch,
    derive_step_seed,
)
from repro.nn import Adam, Linear, Tensor

TINY = dict(
    repr_dim=8,
    proj_dim=4,
    hidden_channels=4,
    depth=1,
    panel_size=12,
    series_length=24,
    batch_size=8,
    epochs=2,
    seed=0,
)

BASELINE_TINY = dict(
    repr_dim=8,
    proj_dim=4,
    hidden_channels=4,
    depth=1,
    series_length=24,
    batch_size=8,
    epochs=2,
    seed=0,
)


def tiny_pool(n=16, seed=0):
    return np.random.default_rng(seed).normal(size=(n, 1, TINY["series_length"]))


# --------------------------------------------------------------------------- #
# RingArena units
# --------------------------------------------------------------------------- #


class TestRingArena:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError, match="depth"):
            RingArena(1, 64)
        with pytest.raises(ValueError, match="slot_nbytes"):
            RingArena(2, 0)

    def test_slot_size_is_cache_line_aligned(self):
        ring = RingArena(2, 100)
        try:
            assert ring.slot_nbytes == 128
            assert ring.slot_nbytes % RingArena.ALIGN == 0
        finally:
            ring.close(unlink=True)

    def test_slot_of_wraps_around(self):
        ring = RingArena(3, 64)
        try:
            assert [ring.slot_of(step) for step in range(7)] == [0, 1, 2, 0, 1, 2, 0]
        finally:
            ring.close(unlink=True)

    def test_acquire_release_backpressure(self):
        ring = RingArena(2, 64)
        try:
            assert ring.acquire(0) == 0
            assert ring.acquire(1) == 1
            # step 2 maps onto slot 0, which is still busy: backpressure
            assert ring.acquire(2) is None
            assert ring.n_busy == 2
            ring.release(0)
            assert ring.acquire(2) == 0
            ring.release(1)
            ring.release(2)
            assert ring.n_busy == 0
        finally:
            ring.close(unlink=True)

    def test_slot_reuse_after_release_overwrites_in_place(self):
        ring = RingArena(2, 64)
        try:
            first = ring.writer(ring.acquire(0)).write(np.arange(4.0))
            ring.release(0)
            second = ring.writer(ring.acquire(2)).write(np.arange(4.0) + 10.0)
            # same slot, same offset — the ring is bounded, not append-only
            assert first[0] == second[0]
            np.testing.assert_array_equal(ring.view(second), np.arange(4.0) + 10.0)
        finally:
            ring.close(unlink=True)

    def test_view_is_zero_copy(self):
        ring = RingArena(2, 64)
        try:
            descriptor = ring.writer(0).write(np.arange(4.0))
            view = ring.view(descriptor)
            view[0] = 99.0
            np.testing.assert_array_equal(ring.view(descriptor)[0], 99.0)
        finally:
            ring.close(unlink=True)

    def test_writer_rejects_oversize_then_accepts_fitting(self):
        ring = RingArena(2, 64)
        try:
            writer = ring.writer(0)
            assert writer.write(np.zeros(100)) is None  # 800 B > 64 B slot
            assert writer.write(np.zeros(4)) is not None
        finally:
            ring.close(unlink=True)

    def test_writer_bounds_cumulative_slot_usage(self):
        ring = RingArena(2, 64)
        try:
            writer = ring.writer(1)
            assert writer.write(np.zeros(6)) is not None  # 48 of 64 B
            assert writer.write(np.zeros(6)) is None  # would overflow the slot
        finally:
            ring.close(unlink=True)

    def test_attach_maps_the_same_memory(self):
        owner = RingArena(2, 64)
        try:
            attached = RingArena.attach(*owner.spec)
            try:
                descriptor = attached.writer(1).write(np.arange(3.0))
                np.testing.assert_array_equal(owner.view(descriptor), np.arange(3.0))
            finally:
                attached.close(unlink=False)
        finally:
            owner.close(unlink=True)

    def test_encode_decode_roundtrip_through_slot(self):
        ring = RingArena(2, 256)
        try:
            batch = (np.arange(6.0).reshape(2, 3), None, np.ones(2, dtype=np.float32))
            encoded = _encode_batch(batch, ring.writer(1))
            decoded = _decode_batch(encoded, ring._shm.buf, copy=False)
            np.testing.assert_array_equal(decoded[0], batch[0])
            assert decoded[1] is None
            np.testing.assert_array_equal(decoded[2], batch[2])
            # copy=False maps views over the ring; copy=True detaches
            assert decoded[0].base is not None
            assert _decode_batch(encoded, ring._shm.buf, copy=True)[0].base is None
        finally:
            ring.close(unlink=True)


def test_derive_step_seed_is_stable_and_distinct():
    a = np.random.default_rng(derive_step_seed(0, 1, 2)).integers(0, 2**31, 4)
    b = np.random.default_rng(derive_step_seed(0, 1, 2)).integers(0, 2**31, 4)
    c = np.random.default_rng(derive_step_seed(0, 2, 1)).integers(0, 2**31, 4)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)  # (epoch, step) is not a flat hash


# --------------------------------------------------------------------------- #
# ProducerPool behaviour
# --------------------------------------------------------------------------- #


class _ScaleProducer:
    """Payload → payload * 2, tagged with the step key (picklable for spawn)."""

    def produce(self, epoch, step, payload):
        return payload * 2.0, np.array([float(epoch), float(step)])


def _scale_factory(producer_index):
    return _ScaleProducer()


class _CrashProducer:
    def produce(self, epoch, step, payload):
        raise ValueError(f"deliberate producer crash at step {step}")


def _crash_factory(producer_index):
    return _CrashProducer()


class TestProducerPool:
    @staticmethod
    def _consume(stream):
        # yielded batches are views into the ring, valid only until the
        # generator is resumed (the consumer contract) — copy while suspended
        return [tuple(np.asarray(part).copy() for part in item) for item in stream]

    def test_stream_yields_in_step_order(self):
        payloads = [np.full(4, float(i)) for i in range(7)]
        with ProducerPool(_scale_factory, n_producers=2, prefetch_depth=3) as pool:
            out = self._consume(pool.stream(5, iter(payloads), slot_nbytes=128))
            assert len(out) == 7
            for step, (doubled, tag) in enumerate(out):
                np.testing.assert_array_equal(np.asarray(doubled), np.full(4, 2.0 * step))
                np.testing.assert_array_equal(np.asarray(tag), [5.0, float(step)])
            stats = pool.last_stream_stats
            assert stats["steps"] == 7
            assert stats["oversize_arrays"] == 0
            assert stats["produce_seconds"] >= 0.0

    def test_oversize_batches_fall_back_to_pickle(self):
        payloads = [np.full(512, float(i)) for i in range(4)]  # 4 KiB each
        with ProducerPool(_scale_factory, n_producers=1, prefetch_depth=2) as pool:
            pool._ensure_ring(64)  # pin a deliberately tiny ring first
            out = self._consume(pool.stream(0, iter(payloads)))
            for step, (doubled, _) in enumerate(out):
                np.testing.assert_array_equal(doubled, np.full(512, 2.0 * step))
            assert pool.last_stream_stats["oversize_arrays"] > 0

    def test_producer_crash_raises_worker_error_and_breaks_pool(self):
        pool = ProducerPool(_crash_factory, n_producers=1, prefetch_depth=2)
        try:
            with pytest.raises(WorkerError, match="deliberate producer crash"):
                list(pool.stream(0, iter([np.zeros(4)])))
            with pytest.raises(RuntimeError, match="broken"):
                list(pool.stream(0, iter([np.zeros(4)])))
        finally:
            pool.close()

    def test_resize_grows_and_shrinks_without_changing_results(self):
        payloads = [np.full(4, float(i)) for i in range(5)]
        with ProducerPool(_scale_factory, n_producers=1, prefetch_depth=2) as pool:
            before = self._consume(pool.stream(0, iter(payloads)))
            pool.resize(3)
            assert pool.n_producers == 3
            grown = self._consume(pool.stream(0, iter(payloads)))
            pool.resize(1)
            assert pool.n_producers == 1
            shrunk = self._consume(pool.stream(0, iter(payloads)))
        for (a, _), (b, _), (c, _) in zip(before, grown, shrunk):
            np.testing.assert_array_equal(a, b)
            np.testing.assert_array_equal(a, c)

    def test_stream_abandoned_mid_epoch_keeps_pool_usable(self):
        payloads = [np.full(4, float(i)) for i in range(6)]
        with ProducerPool(_scale_factory, n_producers=2, prefetch_depth=2) as pool:
            stream = pool.stream(0, iter(payloads))
            next(stream)
            stream.close()  # consumer bails after one step (e.g. early stop)
            out = self._consume(pool.stream(1, iter(payloads)))
            assert len(out) == 6

    def test_close_is_idempotent(self):
        pool = ProducerPool(_scale_factory, n_producers=1, prefetch_depth=2)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            list(pool.stream(0, iter([np.zeros(2)])))

    def test_unpicklable_factory_rejected(self):
        with pytest.raises(ValueError, match="picklable"):
            ProducerPool(lambda index: _ScaleProducer(), n_producers=1)

    def test_pool_validates_knobs(self):
        with pytest.raises(ValueError, match="n_producers"):
            ProducerPool(_scale_factory, n_producers=0)
        with pytest.raises(ValueError, match="prefetch_depth"):
            ProducerPool(_scale_factory, n_producers=1, prefetch_depth=1)


# --------------------------------------------------------------------------- #
# configuration / validation
# --------------------------------------------------------------------------- #


class TestPipelineValidation:
    def test_config_rejects_producers_with_sharded_workers(self):
        with pytest.raises(ValueError, match="n_workers=1"):
            AimTSConfig(**TINY, n_producers=1, n_workers=2)

    def test_config_rejects_single_slot_prefetch(self):
        with pytest.raises(ValueError, match="prefetch_depth"):
            BaselineConfig(**BASELINE_TINY, n_producers=1, prefetch_depth=1)

    def test_trainer_rejects_producers_with_worker_pool(self):
        loop = _MiniLoop()
        with pytest.raises(ValueError, match="sequential"):
            Trainer(
                loop,
                Adam(list(loop.parameters()), lr=0.1),
                n_workers=2,
                n_producers=1,
            )

    def test_trainer_rejects_loop_without_producer_factory(self):
        loop = _MiniLoop()
        trainer = Trainer(loop, Adam(list(loop.parameters()), lr=0.1), n_producers=1)
        with pytest.raises(ValueError, match="producer_factory"):
            trainer.fit(1)

    def test_non_pipeline_baseline_rejects_producers(self):
        baseline = TS2Vec(BaselineConfig(**BASELINE_TINY, n_producers=1))
        with pytest.raises(ValueError, match="does not support pipelined"):
            baseline.pretrain(tiny_pool())


class _MiniLoop(TrainLoop):
    def __init__(self):
        self.module = Linear(2, 2, rng=0)

    def named_modules(self):
        return {"module": self.module}

    def make_batches(self, rng, epoch):
        yield np.ones((2, 2))

    def batch_loss(self, batch):
        return (self.module(Tensor(batch)) ** 2).mean()


# --------------------------------------------------------------------------- #
# bit-identity: inline sequential reference vs producer processes
# --------------------------------------------------------------------------- #


def _aimts_losses(n_producers, prefetch_depth):
    config = AimTSConfig(**TINY, n_producers=n_producers, prefetch_depth=prefetch_depth)
    pretrainer = AimTSPretrainer(config)
    history = pretrainer.fit(tiny_pool())
    pretrainer.shutdown_workers()
    return history.total_loss, history.prototype_loss, history.series_image_loss


class TestPipelinedBitIdentity:
    """Float64 losses identical to the sequential reference, ``==`` exact."""

    @pytest.fixture(scope="class")
    def aimts_reference(self):
        return _aimts_losses(n_producers=1, prefetch_depth=0)

    @pytest.mark.parametrize("n_producers", [1, 2])
    @pytest.mark.parametrize("prefetch_depth", [2, 4])
    def test_aimts_pipelined_matches_sequential(
        self, aimts_reference, n_producers, prefetch_depth
    ):
        assert _aimts_losses(n_producers, prefetch_depth) == aimts_reference

    @pytest.mark.parametrize("n_producers,prefetch_depth", [(1, 2), (2, 4)])
    def test_simclr_pipelined_matches_sequential(self, n_producers, prefetch_depth):
        def run(**knobs):
            baseline = SimCLR(BaselineConfig(**BASELINE_TINY, **knobs))
            curve = list(baseline.pretrain(tiny_pool()))
            baseline.shutdown_workers()
            return curve

        reference = run(n_producers=1, prefetch_depth=0)
        assert run(n_producers=n_producers, prefetch_depth=prefetch_depth) == reference

    def test_elastic_producers_mid_fit_keep_the_curve(self, aimts_reference):
        class GrowProducers(Callback):
            def on_epoch_end(self, trainer, logs):
                trainer.n_producers = 2  # next epoch resizes the pool

        config = AimTSConfig(**TINY, n_producers=1, prefetch_depth=2)
        pretrainer = AimTSPretrainer(config)
        history = pretrainer.fit(tiny_pool(), callbacks=[GrowProducers()])
        assert pretrainer.trainer.producer_pool.n_producers == 2
        pretrainer.shutdown_workers()
        assert (
            history.total_loss,
            history.prototype_loss,
            history.series_image_loss,
        ) == aimts_reference

    def test_pipeline_stats_recorded_per_epoch(self):
        config = AimTSConfig(**TINY, n_producers=1, prefetch_depth=2)
        pretrainer = AimTSPretrainer(config)
        pretrainer.fit(tiny_pool())
        trainer = pretrainer.trainer
        pretrainer.shutdown_workers()
        assert [entry["epoch"] for entry in trainer.pipeline_stats] == [0, 1]
        summary = trainer.pipeline_summary()
        assert summary["steps"] == trainer.state.step
        assert summary["producer_occupancy"] >= 0.0
        assert summary["consumer_stall_seconds"] >= 0.0

    def test_producer_pool_reused_across_fits(self):
        config = AimTSConfig(**TINY, n_producers=1, prefetch_depth=2)
        pretrainer = AimTSPretrainer(config)
        pretrainer.fit(tiny_pool())
        pool = pretrainer._producer_pool
        assert pool is not None
        pretrainer.fit(tiny_pool())
        assert pretrainer._producer_pool is pool
        pretrainer.shutdown_workers()
        assert pretrainer._producer_pool is None
