"""Tests for the layer library and the Module system."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestModuleSystem:
    def test_parameter_discovery_recursive(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        names = [name for name, _ in model.named_parameters()]
        assert "0.weight" in names and "2.bias" in names
        assert len(list(model.parameters())) == 4

    def test_num_parameters(self):
        layer = nn.Linear(3, 5)
        assert layer.num_parameters() == 3 * 5 + 5

    def test_train_eval_cascades(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        layer = nn.Linear(2, 2)
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        model = nn.Sequential(nn.Linear(3, 4), nn.BatchNorm1d(4))
        state = model.state_dict()
        clone = nn.Sequential(nn.Linear(3, 4), nn.BatchNorm1d(4))
        clone.load_state_dict(state)
        for key, value in clone.state_dict().items():
            np.testing.assert_array_equal(value, state[key])

    def test_load_state_dict_shape_mismatch(self):
        layer = nn.Linear(3, 4)
        bad = {k: np.zeros((1, 1)) for k in layer.state_dict()}
        with pytest.raises(ValueError):
            layer.load_state_dict(bad)

    def test_load_state_dict_missing_key(self):
        layer = nn.Linear(3, 4)
        with pytest.raises(KeyError):
            layer.load_state_dict({})


class TestLinearAndConvLayers:
    def test_linear_shapes_and_values(self, rng):
        layer = nn.Linear(4, 3, rng=0)
        x = rng.normal(size=(5, 4))
        out = layer(Tensor(x))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(out.data, expected, atol=1e-12)

    def test_linear_no_bias(self):
        layer = nn.Linear(4, 3, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_linear_higher_rank_input(self, rng):
        layer = nn.Linear(4, 3, rng=0)
        out = layer(Tensor(rng.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 3)

    def test_conv1d_layer(self, rng):
        layer = nn.Conv1d(2, 4, 3, padding=1, dilation=2, rng=0)
        out = layer(Tensor(rng.normal(size=(3, 2, 16))))
        assert out.shape[0] == 3 and out.shape[1] == 4

    def test_conv2d_layer(self, rng):
        layer = nn.Conv2d(3, 5, 3, stride=2, padding=1, rng=0)
        out = layer(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 5, 8, 8)


class TestNormalisationLayers:
    def test_batchnorm1d_normalises_in_training(self, rng):
        bn = nn.BatchNorm1d(4)
        x = Tensor(rng.normal(loc=3.0, scale=2.0, size=(64, 4)))
        out = bn(x)
        assert abs(out.data.mean()) < 0.1
        assert abs(out.data.std() - 1.0) < 0.1

    def test_batchnorm1d_3d_input(self, rng):
        bn = nn.BatchNorm1d(3)
        out = bn(Tensor(rng.normal(size=(8, 3, 20))))
        assert out.shape == (8, 3, 20)

    def test_batchnorm1d_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm1d(2)
        for _ in range(50):
            bn(Tensor(rng.normal(loc=5.0, size=(32, 2))))
        bn.eval()
        out = bn(Tensor(np.full((4, 2), 5.0)))
        # after many batches the running mean approaches 5, so the eval output
        # of inputs at the mean must sit near zero
        assert np.all(np.abs(out.data) < 0.5)

    def test_batchnorm1d_rejects_4d(self, rng):
        with pytest.raises(ValueError):
            nn.BatchNorm1d(2)(Tensor(rng.normal(size=(2, 2, 3, 3))))

    def test_batchnorm2d(self, rng):
        bn = nn.BatchNorm2d(3)
        out = bn(Tensor(rng.normal(loc=2.0, size=(8, 3, 6, 6))))
        assert abs(out.data.mean()) < 0.1

    def test_batchnorm_running_stats_in_state_dict(self):
        bn = nn.BatchNorm1d(2)
        assert "running_mean" in bn.state_dict()

    def test_layernorm(self, rng):
        ln = nn.LayerNorm(8)
        out = ln(Tensor(rng.normal(loc=4.0, size=(5, 8))))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(5), atol=1e-6)


class TestOtherLayers:
    def test_activation_layers(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        assert np.all(nn.ReLU()(x).data >= 0)
        assert np.all(np.abs(nn.Tanh()(x).data) <= 1)
        assert np.all((nn.Sigmoid()(x).data > 0) & (nn.Sigmoid()(x).data < 1))
        assert nn.GELU()(x).shape == x.shape
        np.testing.assert_array_equal(nn.Identity()(x).data, x.data)

    def test_dropout_layer_respects_mode(self, rng):
        layer = nn.Dropout(0.5, rng=0)
        x = Tensor(np.ones((200,)))
        train_out = layer(x)
        layer.eval()
        eval_out = layer(x)
        assert (train_out.data == 0).any()
        np.testing.assert_array_equal(eval_out.data, x.data)

    def test_dropout_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)

    def test_flatten(self, rng):
        assert nn.Flatten()(Tensor(rng.normal(size=(2, 3, 4)))).shape == (2, 12)

    def test_maxpool_and_adaptive_pools(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        assert nn.MaxPool2d(2)(x).shape == (2, 3, 4, 4)
        assert nn.AdaptiveAvgPool2d(1)(x).shape == (2, 3, 1, 1)
        x1d = Tensor(rng.normal(size=(2, 3, 9)))
        assert nn.AdaptiveAvgPool1d(1)(x1d).shape == (2, 3, 1)

    def test_sequential_iteration_and_len(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.ReLU())
        assert len(model) == 2
        assert len(list(iter(model))) == 2

    def test_mlp_forward_and_dropout(self, rng):
        mlp = nn.MLP(6, [8, 8], 3, dropout=0.1, rng=0)
        out = mlp(Tensor(rng.normal(size=(4, 6))))
        assert out.shape == (4, 3)

    def test_mlp_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            nn.MLP(4, [4], 2, activation="swishish")
