"""Tests for the synthetic pattern families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import family_names, get_family, register_family


class TestFamilyRegistry:
    def test_all_expected_families_registered(self):
        names = family_names()
        for expected in ("ecg", "motion", "starlight", "device", "eeg", "vibration", "spectro", "traffic", "shapes"):
            assert expected in names

    def test_get_family_unknown(self):
        with pytest.raises(KeyError):
            get_family("does-not-exist")

    def test_register_family_decorator(self):
        @register_family("unit_test_family")
        def dummy(n_samples, n_classes=2, length=8, n_variables=1, rng=None, noise=0.0, warp=0.0):
            X = np.zeros((n_samples, n_variables, length))
            y = np.zeros(n_samples, dtype=int)
            return X, y

        assert get_family("unit_test_family") is dummy


@pytest.mark.parametrize("family", ["ecg", "motion", "starlight", "device", "eeg", "vibration", "spectro", "traffic", "shapes"])
class TestEveryFamily:
    def test_shapes_and_labels(self, family):
        generator = get_family(family)
        X, y = generator(20, n_classes=3, length=40, n_variables=2, rng=0)
        assert X.shape == (20, 2, 40)
        assert y.shape == (20,)
        assert set(np.unique(y)).issubset({0, 1, 2})

    def test_finite_values(self, family):
        generator = get_family(family)
        X, _ = generator(10, n_classes=2, length=32, n_variables=1, rng=1)
        assert np.all(np.isfinite(X))

    def test_determinism_with_same_seed(self, family):
        generator = get_family(family)
        X1, y1 = generator(8, n_classes=2, length=32, n_variables=1, rng=42)
        X2, y2 = generator(8, n_classes=2, length=32, n_variables=1, rng=42)
        np.testing.assert_array_equal(X1, X2)
        np.testing.assert_array_equal(y1, y2)

    def test_different_seeds_differ(self, family):
        generator = get_family(family)
        X1, _ = generator(8, n_classes=2, length=32, n_variables=1, rng=1)
        X2, _ = generator(8, n_classes=2, length=32, n_variables=1, rng=2)
        assert not np.allclose(X1, X2)


class TestClassSeparability:
    """The families must produce classes that a simple classifier can separate.

    This is the property that makes the synthetic archives meaningful stand-ins
    for UCR/UEA: class identity must be recoverable from the series.
    """

    @pytest.mark.parametrize("family", ["ecg", "motion", "starlight", "device", "eeg", "vibration"])
    def test_nearest_centroid_beats_chance(self, family):
        generator = get_family(family)
        X_train, y_train = generator(60, n_classes=2, length=64, n_variables=1, rng=7)
        X_test, y_test = generator(60, n_classes=2, length=64, n_variables=1, rng=7)
        centroids = np.stack([X_train[y_train == c].mean(axis=0).ravel() for c in (0, 1)])
        flat = X_test.reshape(len(X_test), -1)
        distances = np.linalg.norm(flat[:, None, :] - centroids[None, :, :], axis=-1)
        predictions = distances.argmin(axis=1)
        accuracy = (predictions == y_test).mean()
        assert accuracy > 0.7, f"{family} classes are not separable (acc={accuracy:.2f})"

    def test_ecg_t_wave_polarity_differs_between_classes(self):
        generator = get_family("ecg")
        X, y = generator(80, n_classes=2, length=96, n_variables=1, rng=3, noise=0.0)
        # the T wave lives in the second half of each beat; its mean amplitude
        # should have opposite sign between the healthy and MI-like classes
        healthy = X[y == 0][:, 0, :].mean(axis=0)
        infarcted = X[y == 1][:, 0, :].mean(axis=0)
        t_wave_region = slice(28, 38)  # after the first R peak
        assert healthy[t_wave_region].mean() * infarcted[t_wave_region].mean() < 0
