"""Sharded data-parallel training: flat packing, sharding and the worker pool.

The spawn-based smoke tests use deliberately tiny models/pools so tier-1
stays fast; the heavier determinism claims (multi-worker runs reproducible at
a fixed worker count, ``n_workers=1`` bit-identical to the sequential
trainer) are asserted on the real AimTS pre-training objective.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import BaselineConfig
from repro.baselines.simclr import SimCLR
from repro.core.config import AimTSConfig
from repro.core.pretrainer import AimTSPretrainer
from repro.engine import Trainer, TrainLoop, shard_arrays
from repro.engine.parallel import (
    GradientWorkerPool,
    WorkerError,
    _decode_batch,
    _encode_batch,
    _InputArena,
    derive_worker_seed,
)
from repro.nn import Adam, Linear, Tensor
from repro.nn.flat import FlatLayout
from repro.nn.tensor import default_dtype

TINY = dict(
    repr_dim=8,
    proj_dim=4,
    hidden_channels=4,
    depth=1,
    panel_size=12,
    series_length=24,
    batch_size=8,
    epochs=1,
    seed=0,
)


def tiny_pool(n=16, seed=0):
    return np.random.default_rng(seed).normal(size=(n, 1, TINY["series_length"]))


# --------------------------------------------------------------------------- #
# flat packing
# --------------------------------------------------------------------------- #
class TestFlatLayout:
    def _model(self, dtype=np.float64):
        with default_dtype(dtype):
            return Linear(4, 3, rng=0)

    def test_pack_unpack_roundtrip(self):
        model = self._model()
        layout = FlatLayout(model.parameters())
        buffers = layout.allocate()
        layout.pack_data(buffers)
        original = {name: p.data.copy() for name, p in model.named_parameters()}
        for param in model.parameters():
            param.data += 1.0
        layout.unpack_data(buffers)
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, original[name])

    def test_unpack_preserves_array_identity(self):
        model = self._model()
        layout = FlatLayout(model.parameters())
        buffers = layout.allocate()
        layout.pack_data(buffers)
        before = [id(p.data) for p in model.parameters()]
        layout.unpack_data(buffers)
        assert [id(p.data) for p in model.parameters()] == before

    def test_one_buffer_per_dtype_no_upcast(self):
        model = self._model(np.float32)
        layout = FlatLayout(model.parameters())
        assert set(layout.sizes) == {"float32"}
        assert layout.allocate()["float32"].dtype == np.float32

    def test_grad_pack_none_is_zero(self):
        model = self._model()
        layout = FlatLayout(model.parameters())
        buffers = layout.allocate()
        buffers["float64"][:] = 7.0
        layout.pack_grads(buffers)
        assert np.all(buffers["float64"] == 0.0)

    def test_reduce_grads_fixed_order_weighted(self):
        model = self._model()
        layout = FlatLayout(model.parameters())
        a, b = layout.allocate(), layout.allocate()
        a["float64"][:] = 2.0
        b["float64"][:] = 4.0
        layout.reduce_grads([a, b], [0.25, 0.75])
        for param in model.parameters():
            np.testing.assert_allclose(param.grad, 2.0 * 0.25 + 4.0 * 0.75)

    def test_reduce_grads_accumulates(self):
        model = self._model()
        layout = FlatLayout(model.parameters())
        a = layout.allocate()
        a["float64"][:] = 1.0
        layout.reduce_grads([a], [1.0])
        layout.reduce_grads([a], [1.0], accumulate=True)
        for param in model.parameters():
            np.testing.assert_allclose(param.grad, 2.0)

    def test_signature_detects_mismatch(self):
        assert FlatLayout(self._model().parameters()).signature() != FlatLayout(
            Linear(5, 3, rng=0).parameters()
        ).signature()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FlatLayout([])


# --------------------------------------------------------------------------- #
# sharding + batch transport
# --------------------------------------------------------------------------- #
class TestShardArrays:
    def test_even_split(self):
        shards = shard_arrays(np.arange(12).reshape(12, 1), 3)
        assert [weight for _, weight in shards] == [4, 4, 4]
        np.testing.assert_array_equal(
            np.concatenate([sub for sub, _ in shards]), np.arange(12).reshape(12, 1)
        )

    def test_tuple_batch_with_none(self):
        X = np.arange(20).reshape(10, 2)
        shards = shard_arrays((X, None), 2)
        assert len(shards) == 2
        for (sub_x, sub_none), weight in shards:
            assert sub_none is None
            assert sub_x.shape[0] == weight == 5

    def test_min_samples_shrinks_shard_count(self):
        shards = shard_arrays(np.zeros((5, 1)), 4, min_samples=2)
        assert [w for _, w in shards] == [2, 3]
        assert all(w >= 2 for _, w in shards)

    def test_single_shard_when_batch_too_small(self):
        shards = shard_arrays(np.zeros((3, 1)), 2, min_samples=2)
        assert len(shards) == 1 and shards[0][1] == 3

    def test_labels_split_alongside(self):
        X, y = np.zeros((6, 1, 4)), np.arange(6)
        shards = shard_arrays((X, y), 2)
        np.testing.assert_array_equal(shards[1][0][1], np.arange(3, 6))

    def test_rejects_batch_without_arrays(self):
        with pytest.raises(ValueError):
            shard_arrays((None, 3), 2)


class TestBatchTransport:
    def test_roundtrip_through_arena(self):
        arena = _InputArena()
        batch = (np.arange(12.0).reshape(3, 4), None, np.float32(2.5))
        arena.ensure(256)
        arena.reset()
        encoded = _encode_batch(batch, arena)
        decoded = _decode_batch(encoded, arena._shm.buf)
        np.testing.assert_array_equal(decoded[0], batch[0])
        assert decoded[1] is None and decoded[2] == np.float32(2.5)
        arena.close()

    def test_overflow_falls_back_to_pickle(self):
        arena = _InputArena()
        arena.ensure(16)
        arena.reset()
        big = np.zeros((64, 64))
        encoded = _encode_batch(big, arena)
        assert encoded[0] == "pickle"
        np.testing.assert_array_equal(_decode_batch(encoded, None), big)
        arena.close()

    def test_decoded_arrays_are_copies(self):
        arena = _InputArena()
        arena.ensure(256)
        arena.reset()
        encoded = _encode_batch(np.ones(4), arena)
        decoded = _decode_batch(encoded, arena._shm.buf)
        arena.reset()
        _encode_batch(np.zeros(4), arena)
        np.testing.assert_array_equal(decoded, np.ones(4))
        arena.close()


def test_derive_worker_seed_is_stable_and_distinct():
    streams = {
        (w, n): np.random.default_rng(derive_worker_seed(3407, w, n)).integers(0, 2**31)
        for w in range(3)
        for n in (2, 3)
    }
    assert len(set(streams.values())) == len(streams)
    again = np.random.default_rng(derive_worker_seed(3407, 0, 2)).integers(0, 2**31)
    assert again == streams[(0, 2)]


# --------------------------------------------------------------------------- #
# worker pool smoke tests (spawn-safe, tiny models — tier-1)
# --------------------------------------------------------------------------- #
class TestParallelPretrainSmoke:
    def test_two_worker_pretrain_runs_and_is_deterministic(self):
        """The PR 5 tier-1 smoke test: n_workers=2, spawn, tiny pool."""
        def run():
            pretrainer = AimTSPretrainer(AimTSConfig(**TINY, n_workers=2))
            history = pretrainer.fit(tiny_pool())
            weights = pretrainer.ts_encoder.state_dict()
            pretrainer.shutdown_workers()
            return history.total_loss, weights

        losses_a, weights_a = run()
        losses_b, weights_b = run()
        assert len(losses_a) == 1 and np.isfinite(losses_a).all()
        assert losses_a == losses_b  # deterministic at a fixed worker count
        for key in weights_a:
            np.testing.assert_array_equal(weights_a[key], weights_b[key])

    def test_n_workers_1_bit_identical_to_sequential(self):
        sequential = AimTSPretrainer(AimTSConfig(**TINY))
        explicit = AimTSPretrainer(AimTSConfig(**TINY, n_workers=1))
        curve_a = sequential.fit(tiny_pool()).total_loss
        curve_b = explicit.fit(tiny_pool()).total_loss
        assert curve_a == curve_b

    def test_pool_reused_across_fits(self):
        pretrainer = AimTSPretrainer(AimTSConfig(**TINY, n_workers=2))
        pretrainer.fit(tiny_pool())
        first_pool = pretrainer._worker_pool
        assert first_pool is not None
        pretrainer.fit(tiny_pool())
        assert pretrainer._worker_pool is first_pool
        pretrainer.shutdown_workers()
        assert pretrainer._worker_pool is None

    def test_baseline_two_worker_pretrain(self):
        baseline = SimCLR(
            BaselineConfig(
                repr_dim=8,
                proj_dim=4,
                hidden_channels=4,
                depth=1,
                series_length=24,
                batch_size=8,
                epochs=1,
                seed=0,
                n_workers=2,
            )
        )
        curve = baseline.pretrain(tiny_pool())
        baseline.shutdown_workers()
        assert len(curve) == 1 and np.isfinite(curve).all()


class TestTrainerValidation:
    def test_rejects_nonpositive_workers(self):
        pretrainer = AimTSPretrainer(AimTSConfig(**TINY))
        with pytest.raises(ValueError):
            Trainer(
                object.__new__(TrainLoop),
                Adam(list(pretrainer.parameters()), lr=1e-3),
                n_workers=0,
            )

    def test_loop_without_factory_rejected(self):
        class NoFactoryLoop(TrainLoop):
            def __init__(self):
                with default_dtype(np.float64):
                    self.model = Linear(3, 2, rng=0)

            def named_modules(self):
                return {"model": self.model}

            def make_batches(self, rng, epoch):
                yield np.zeros((2, 3))

            def batch_loss(self, batch):
                return (self.model(Tensor(batch)) ** 2).mean()

        loop = NoFactoryLoop()
        trainer = Trainer(loop, Adam(list(loop.parameters()), lr=1e-3), n_workers=2)
        with pytest.raises(ValueError, match="worker_factory"):
            trainer.fit(1)

    def test_unpicklable_factory_rejected(self):
        model = Linear(3, 2, rng=0)
        with pytest.raises(ValueError, match="picklable"):
            GradientWorkerPool(
                lambda worker_index, n_workers: None,
                list(model.parameters()),
                n_workers=2,
            )

    def test_pool_requires_two_workers(self):
        model = Linear(3, 2, rng=0)
        with pytest.raises(ValueError, match="n_workers"):
            GradientWorkerPool(
                derive_worker_seed, list(model.parameters()), n_workers=1
            )

    def test_worker_error_surfaces_remote_traceback_and_breaks_pool(self):
        pretrainer = AimTSPretrainer(AimTSConfig(**TINY, n_workers=2))
        pretrainer.fit(tiny_pool())
        pool = pretrainer._worker_pool
        with pytest.raises(WorkerError, match="worker"):
            # a malformed shard (2-D series) makes the replica loss raise;
            # the pool must surface the remote traceback, not hang
            pool.step([(np.zeros((4, TINY["series_length"])), 4)])
        # stale in-flight replies could pair old gradients with a new batch,
        # so the pool refuses further steps after any worker error
        with pytest.raises(RuntimeError, match="broken"):
            pool.step([(tiny_pool(4), 4)])
        pretrainer.shutdown_workers()


class TestReviewRegressions:
    """Regression coverage for the PR 5 review findings."""

    def test_parallel_resume_warns_about_worker_streams(self, tmp_path):
        from repro.engine import Checkpointer

        pretrainer = AimTSPretrainer(AimTSConfig(**TINY, n_workers=2))
        path = tmp_path / "ckpt.npz"
        pretrainer.fit(tiny_pool(), callbacks=[Checkpointer(path)])
        with pytest.warns(RuntimeWarning, match="not bit-identical"):
            pretrainer.fit(tiny_pool(), epochs=1, resume_from=path)
        pretrainer.shutdown_workers()

    def test_sequential_resume_does_not_warn(self, tmp_path):
        import warnings

        from repro.engine import Checkpointer

        pretrainer = AimTSPretrainer(AimTSConfig(**TINY))
        path = tmp_path / "ckpt.npz"
        pretrainer.fit(tiny_pool(), callbacks=[Checkpointer(path)])
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            AimTSPretrainer(AimTSConfig(**TINY)).fit(
                tiny_pool(), epochs=1, resume_from=path
            )

    def test_parallel_fit_syncs_bn_running_stats_to_parent(self):
        # the image encoder carries the BatchNorm layers; its running stats
        # only advance inside the workers and must land on the parent
        pretrainer = AimTSPretrainer(AimTSConfig(**TINY, n_workers=2))
        fresh = {
            key: value.copy()
            for key, value in pretrainer.image_encoder.state_dict().items()
            if "running" in key
        }
        assert fresh  # the image encoder does have BN buffers to sync
        pretrainer.fit(tiny_pool())
        after = pretrainer.image_encoder.state_dict()
        assert any(
            not np.array_equal(after[key], fresh[key]) for key in fresh
        ), "parent BN running stats never left their initial values"
        # and they match worker 0's replica exactly
        pool = pretrainer._worker_pool
        pool._command_queues[0].put(("buffers",))
        payload = pool._collect({0: "buffers"})[0]
        for key, value in payload.items():
            prefix = "image_encoder."
            if key.startswith(prefix) and "running" in key:
                np.testing.assert_array_equal(after[key[len(prefix) :]], value)
        pretrainer.shutdown_workers()

    def test_apply_module_buffers_targets_buffers_only(self):
        from repro.engine.parallel import _apply_module_buffers, _module_buffer_state
        from repro.nn import BatchNorm1d, Conv1d, Sequential

        with default_dtype(np.float64):
            model = Sequential(Conv1d(2, 3, 3, rng=0), BatchNorm1d(3))
        weights_before = {k: v.copy() for k, v in model.state_dict().items()}
        buffer_keys = set(_module_buffer_state({"m": model}))
        updates = {
            key[len("m.") :]: np.full_like(value, 0.25)
            for key, value in _module_buffer_state({"m": model}).items()
            if "running" in key
        }
        _apply_module_buffers(model, updates)
        after = model.state_dict()
        for key, value in after.items():
            if f"m.{key}" in buffer_keys and "running" in key:
                np.testing.assert_array_equal(value, 0.25)
            elif "num_batches" not in key:
                np.testing.assert_array_equal(value, weights_before[key])


# --------------------------------------------------------------------------- #
# shutdown lifecycle: idempotent no-ops + atexit safety net (ISSUE 6)
# --------------------------------------------------------------------------- #
class TestShutdownLifecycle:
    def test_shutdown_unstarted_estimators_is_silent_noop(self):
        # never-fitted pretrainer / baseline / facade: no pool exists yet
        from repro.core.model import AimTS

        AimTSPretrainer(AimTSConfig(**TINY, n_workers=2)).shutdown_workers()
        AimTS(AimTSConfig(**TINY, n_workers=2)).shutdown_workers()
        baseline = SimCLR(
            BaselineConfig(
                repr_dim=8, proj_dim=4, hidden_channels=4, depth=1,
                series_length=24, batch_size=8, epochs=1, seed=0, n_workers=2,
            )
        )
        baseline.shutdown_workers()

    def test_double_shutdown_is_silent_noop(self):
        pretrainer = AimTSPretrainer(AimTSConfig(**TINY, n_workers=2))
        pretrainer.fit(tiny_pool())
        pretrainer.shutdown_workers()
        pretrainer.shutdown_workers()  # second call: nothing to do, no raise
        assert pretrainer._worker_pool is None

    def test_pool_close_is_idempotent(self):
        pretrainer = AimTSPretrainer(AimTSConfig(**TINY, n_workers=2))
        pretrainer.fit(tiny_pool())
        pool = pretrainer._worker_pool
        pool.close()
        pool.close()  # direct double-close on the pool itself
        assert pool._closed

    def test_pool_registers_and_unregisters_atexit(self, monkeypatch):
        import atexit

        registered: list = []
        real_register, real_unregister = atexit.register, atexit.unregister

        def recording_register(func, *args, **kwargs):
            registered.append(func)
            return real_register(func, *args, **kwargs)

        def recording_unregister(func):
            while func in registered:  # equality, like atexit itself
                registered.remove(func)
            return real_unregister(func)

        monkeypatch.setattr(atexit, "register", recording_register)
        monkeypatch.setattr(atexit, "unregister", recording_unregister)
        pretrainer = AimTSPretrainer(AimTSConfig(**TINY, n_workers=2))
        pretrainer.fit(tiny_pool())
        pool = pretrainer._worker_pool
        # registered at construction: an abandoned interpreter closes the
        # pool instead of hanging on live worker processes / queue feeders
        assert pool.close in registered
        pool.close()
        # close() unregistered itself, so interpreter shutdown never calls
        # into an already-dead pool
        assert pool.close not in registered


class TestInputArenaView:
    def test_view_roundtrips_descriptor_zero_copy(self):
        from repro.engine.parallel import InputArena

        arena = InputArena()
        arena.ensure(1024)
        array = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
        descriptor = arena.write(array)
        view = arena.view(descriptor)
        np.testing.assert_array_equal(view, array)
        view[0, 0, 0] = -1.0  # a view, not a copy: writes land in the arena
        assert arena.view(descriptor)[0, 0, 0] == -1.0
        arena.close()

    def test_consecutive_writes_form_contiguous_batch(self):
        from repro.engine.parallel import InputArena

        arena = InputArena()
        arena.ensure(4096)
        samples = [np.full((2, 8), float(i)) for i in range(3)]
        first = arena.write(samples[0])
        for sample in samples[1:]:
            arena.write(sample)
        offset, dtype, shape = first
        batch = arena.view((offset, dtype, (3,) + shape))
        np.testing.assert_array_equal(batch, np.stack(samples))
        arena.close()

    def test_view_without_segment_raises(self):
        from repro.engine.parallel import InputArena

        with pytest.raises(ValueError, match="no segment"):
            InputArena().view((0, "float64", (1,)))

    def test_private_alias_still_importable(self):
        from repro.engine.parallel import InputArena

        assert _InputArena is InputArena
