"""StepArena pooling contract + the PR 10 allocation-regression gate.

The training-side buffer arena (:mod:`repro.nn.arena`) promises that a
fixed-configuration training step reaches an allocation-free steady state:
after warmup every array the forward/backward passes materialise comes from
the pool (zero misses), generation rollover is a counter reset, and pooled
buffers replicate the memory layout the allocate-fresh expressions would
have produced (so reduction orders — and therefore float bits — are
unchanged; the bit-identity side is pinned in ``tests/test_precision.py``).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.config import AimTSConfig
from repro.core.pretrainer import AimTSPretrainer
from repro.encoders import TSEncoder
from repro.nn.arena import (
    StepArena,
    _layout_perm,
    active_arena,
    result_template,
    use_arena,
)
from repro.nn.tensor import Tensor, default_dtype


# --------------------------------------------------------------------------- #
# pool disciplines
# --------------------------------------------------------------------------- #
class TestStepArenaPooling:
    def test_buffer_reuses_slot_across_generations(self):
        arena = StepArena()
        first = arena.buffer("conv.out", (4, 8), np.float32)
        arena.advance()
        second = arena.buffer("conv.out", (4, 8), np.float32)
        assert first is second
        assert arena.stats() == {
            "hits": 1,
            "misses": 1,
            "generation": 1,
            "nbytes": first.nbytes,
            "peak_bytes": first.nbytes,
            "buffers": 1,
        }

    def test_repeated_requests_within_a_generation_never_alias(self):
        arena = StepArena()
        first = arena.buffer("grad", (3, 3), np.float64)
        second = arena.buffer("grad", (3, 3), np.float64)
        assert first is not second
        arena.advance()
        # occurrence order is stable: the N-th request gets the N-th slot
        assert arena.buffer("grad", (3, 3), np.float64) is first
        assert arena.buffer("grad", (3, 3), np.float64) is second

    def test_scratch_is_a_single_slot_within_a_generation(self):
        arena = StepArena()
        first = arena.scratch("vjp", (5,), np.float32)
        second = arena.scratch("vjp", (5,), np.float32)
        assert first is second  # transient slot, reissued immediately

    def test_shape_and_dtype_changes_get_their_own_slots(self):
        arena = StepArena()
        full = arena.buffer("cols", (8, 24), np.float32)
        tail = arena.buffer("cols", (3, 24), np.float32)  # last-batch remainder
        double = arena.buffer("cols", (8, 24), np.float64)
        assert full is not tail and full is not double
        arena.advance()
        assert arena.buffer("cols", (8, 24), np.float32) is full
        assert arena.buffer("cols", (3, 24), np.float32) is tail

    def test_like_replicates_a_permuted_layout(self):
        # a conv output transpose-view: (B, T, C) storage addressed as (B, C, T)
        template = np.zeros((4, 6, 5)).transpose(0, 2, 1)
        arena = StepArena()
        buf = arena.buffer("out", template.shape, template.dtype, like=template)
        assert buf.shape == template.shape
        assert buf.strides == template.strides
        assert not buf.flags.c_contiguous
        # a C-contiguous `like` is the same slot family as like=None
        c_buf = arena.buffer("plain", (4, 5, 6), np.float64, like=np.zeros((4, 5, 6)))
        arena.advance()
        assert arena.buffer("plain", (4, 5, 6), np.float64) is c_buf

    def test_clear_drops_buffers_and_bytes(self):
        arena = StepArena()
        arena.buffer("a", (16,), np.float64)
        assert arena.nbytes() == 128
        arena.clear()
        assert arena.nbytes() == 0
        assert arena.stats()["buffers"] == 0

    def test_use_arena_scopes_and_restores_on_error(self):
        assert active_arena() is None
        arena = StepArena()
        with use_arena(arena):
            assert active_arena() is arena
            with use_arena(None):  # None = allocate-fresh, valid nesting
                assert active_arena() is None
            assert active_arena() is arena
        assert active_arena() is None
        with pytest.raises(RuntimeError):
            with use_arena(arena):
                raise RuntimeError("boom")
        assert active_arena() is None


# --------------------------------------------------------------------------- #
# layout helpers
# --------------------------------------------------------------------------- #
class TestLayoutHelpers:
    def test_layout_perm_none_for_c_order(self):
        assert _layout_perm(np.zeros((3, 4, 5))) is None

    def test_layout_perm_recovers_transpose_order(self):
        assert _layout_perm(np.zeros((3, 4, 5)).transpose(0, 2, 1)) == (0, 2, 1)
        assert _layout_perm(np.asfortranarray(np.zeros((3, 4)))) == (1, 0)

    def test_result_template_follows_agreeing_permuted_operands(self):
        permuted = np.zeros((2, 5, 3)).transpose(0, 2, 1)
        other = np.zeros((2, 5, 3)).transpose(0, 2, 1)
        assert result_template(permuted.shape, permuted, other) is permuted

    def test_result_template_c_when_layouts_disagree_or_broadcast(self):
        permuted = np.zeros((2, 5, 3)).transpose(0, 2, 1)
        c_order = np.zeros((2, 3, 5))
        # disagreement between full-shape operands -> C order
        assert result_template(permuted.shape, permuted, c_order) is None
        # broadcast operands never constrain the layout
        assert result_template(permuted.shape, permuted, np.zeros((1, 1, 5))) is permuted
        # all-C operands -> C order
        assert result_template(c_order.shape, c_order) is None


# --------------------------------------------------------------------------- #
# allocation regression: steady-state steps are allocation-free
# --------------------------------------------------------------------------- #
class TestSteadyStateAllocations:
    #: steady-state traced peak must stay far below one unpooled step
    #: (measured ~124 KB pooled vs ~1.24 MB allocate-fresh on this config)
    STEADY_STATE_PEAK_BYTES = 512 * 1024

    def _step(self, encoder: TSEncoder, x: np.ndarray) -> None:
        encoder.zero_grad()
        out = encoder(Tensor(x))
        loss = (out * out).sum()
        loss.backward()

    def test_fixed_shape_steps_reach_zero_misses_after_warmup(self):
        with default_dtype(np.float32):
            encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=2, rng=5)
            x = np.random.default_rng(0).normal(size=(8, 2, 64)).astype(np.float32)
            arena = StepArena()
            misses = []
            with use_arena(arena):
                for _ in range(5):
                    self._step(encoder, x)
                    arena.advance()
                    misses.append(arena.stats()["misses"])
        # every allocation happens in step 1; steps N > 2 perform zero misses
        assert misses[2:] == [misses[1]] * len(misses[2:]), misses
        # ...and every miss created exactly one pooled buffer (no thrash)
        assert arena.stats()["buffers"] == arena.stats()["misses"]
        assert arena.stats()["hits"] > 0
        assert arena.stats()["peak_bytes"] == arena.nbytes()

    def test_steady_state_step_allocation_bytes_bounded(self):
        with default_dtype(np.float32):
            encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=2, rng=5)
            x = np.random.default_rng(0).normal(size=(8, 2, 64)).astype(np.float32)
            arena = StepArena()
            with use_arena(arena):
                for _ in range(3):  # warmup: populate every pool slot
                    self._step(encoder, x)
                    arena.advance()
                misses = arena.stats()["misses"]
                tracemalloc.start()
                self._step(encoder, x)
                arena.advance()
                _, peak = tracemalloc.get_traced_memory()
                tracemalloc.stop()
        assert arena.stats()["misses"] == misses  # the traced step pooled everything
        assert peak < self.STEADY_STATE_PEAK_BYTES, (
            f"steady-state step allocated {peak} bytes "
            f"(bound {self.STEADY_STATE_PEAK_BYTES})"
        )


# --------------------------------------------------------------------------- #
# trainer integration: config knob, stats surface, phase profiler
# --------------------------------------------------------------------------- #
class TestTrainerIntegration:
    @pytest.fixture()
    def pool(self) -> np.ndarray:
        return np.random.default_rng(0).normal(size=(16, 1, 64))

    def _config(self, **overrides) -> AimTSConfig:
        base = dict(
            repr_dim=8,
            proj_dim=8,
            hidden_channels=8,
            depth=1,
            panel_size=24,
            series_length=64,
            n_variables=1,
            batch_size=8,
            epochs=2,
            seed=3407,
        )
        base.update(overrides)
        return AimTSConfig(**base)

    def test_pretrain_fit_runs_arena_at_zero_steady_state_misses(self, pool):
        pretrainer = AimTSPretrainer(self._config())
        pretrainer.fit(pool)
        stats = pretrainer.trainer.arena_stats()
        # one allocation per pooled slot over the whole fit — i.e. zero
        # misses after the first occurrence of each (shape, dtype, layout)
        assert stats["misses"] == stats["buffers"]
        assert stats["hits"] > stats["misses"]
        assert stats["generation"] >= 2 * 2  # steps = epochs * batches
        assert stats["peak_bytes"] > 0

    def test_step_arena_off_reports_empty_stats(self, pool):
        pretrainer = AimTSPretrainer(self._config(step_arena=False))
        pretrainer.fit(pool)
        assert pretrainer.trainer.step_arena is None
        assert pretrainer.trainer.arena_stats() == {}

    def test_profiler_records_phase_columns(self, pool):
        pretrainer = AimTSPretrainer(self._config())
        pretrainer.profile = True
        history = pretrainer.fit(pool)
        epochs = len(history.total_loss)
        for phase in ("forward", "backward", "optimizer", "fetch"):
            curve = pretrainer.trainer.history.curve(f"profile_{phase}_seconds")
            assert len(curve) == epochs
            assert all(v >= 0.0 for v in curve)
        summary = pretrainer.trainer.pipeline_summary()
        assert summary["profile_forward_seconds"] > 0.0
        assert summary["profile_backward_seconds"] > 0.0

    def test_profiler_off_by_default(self, pool):
        pretrainer = AimTSPretrainer(self._config())
        pretrainer.fit(pool)
        assert pretrainer.trainer.profiler is None
        assert "profile_forward_seconds" not in pretrainer.trainer.pipeline_summary()
