"""Tests for the utility helpers (seeding, validation, tables)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils import (
    ResultTable,
    check_array,
    check_in_options,
    check_positive,
    check_probability,
    new_rng,
    seed_everything,
)


class TestSeeding:
    def test_seed_everything_reproducible(self):
        seed_everything(123)
        a = new_rng().normal(size=5)
        seed_everything(123)
        b = new_rng().normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_seed_everything_rejects_negative(self):
        with pytest.raises(ValueError):
            seed_everything(-1)

    def test_new_rng_accepts_int_generator_and_none(self):
        assert isinstance(new_rng(5), np.random.Generator)
        generator = np.random.default_rng(0)
        assert new_rng(generator) is generator
        assert isinstance(new_rng(None), np.random.Generator)

    def test_new_rng_with_same_int_is_deterministic(self):
        np.testing.assert_array_equal(new_rng(7).normal(size=3), new_rng(7).normal(size=3))


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.0) == 1.0
        assert check_positive("x", 0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_in_options(self):
        assert check_in_options("mode", "a", ("a", "b")) == "a"
        with pytest.raises(ValueError):
            check_in_options("mode", "c", ("a", "b"))

    def test_check_array(self):
        arr = check_array("x", [[1.0, 2.0]], ndim=2)
        assert arr.shape == (1, 2)
        with pytest.raises(ValueError):
            check_array("x", [1.0, 2.0], ndim=2)
        with pytest.raises(ValueError):
            check_array("x", [])
        with pytest.raises(ValueError):
            check_array("x", [np.nan, 1.0])


class TestResultTable:
    def test_render_contains_title_and_rows(self):
        table = ResultTable(["Method", "Acc"], title="Table X")
        table.add_row(["AimTS", 0.87])
        table.add_row(["TS2Vec", 0.83])
        text = table.render()
        assert "Table X" in text
        assert "AimTS" in text and "0.870" in text
        assert len(table.rows) == 2

    def test_row_length_validation(self):
        table = ResultTable(["A", "B"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            ResultTable([])

    def test_float_formatting(self):
        table = ResultTable(["v"], float_format="{:.1f}")
        table.add_row([0.123])
        assert "0.1" in table.render()

    def test_str_matches_render(self):
        table = ResultTable(["a"])
        table.add_row([1])
        assert str(table) == table.render()


class TestBenchReport:
    """The BENCH_*.json trajectory report (repro.utils.bench_report)."""

    def _write(self, tmp_path, name, records):
        import json

        (tmp_path / name).write_text(json.dumps(records))

    def test_report_tracks_trajectory_and_delta(self, tmp_path):
        from repro.utils.bench_report import build_report

        self._write(
            tmp_path,
            "BENCH_training.json",
            [
                {"benchmark": "engine_pretrain", "samples_per_sec": 100.0},
                {"benchmark": "engine_pretrain", "samples_per_sec": 200.0},
                {"benchmark": "engine_pretrain", "samples_per_sec": 300.0},
            ],
        )
        report = build_report(tmp_path)
        assert "engine_pretrain" in report
        assert "3.00x" in report  # overall 100 -> 300
        assert "+50.0%" in report  # latest vs previous 200 -> 300

    def test_missing_and_broken_files_do_not_raise(self, tmp_path):
        from repro.utils.bench_report import build_report

        empty = build_report(tmp_path)  # nothing recorded yet: say so, exit 0
        assert "no BENCH_*.json" in empty
        (tmp_path / "BENCH_imaging.json").write_text("{not json")
        report = build_report(tmp_path)
        assert "unreadable" in report

    def test_discovers_unregistered_files_by_glob(self, tmp_path):
        from repro.utils.bench_report import build_report, discover_bench_files

        self._write(
            tmp_path,
            "BENCH_serving.json",
            [{"benchmark": "open_loop", "requests_per_sec": 50.0, "p99_latency_ms": 9.0}],
        )
        self._write(
            tmp_path,
            "BENCH_future_module.json",
            [{"benchmark": "new_thing", "samples_per_sec": 10.0}],
        )
        self._write(
            tmp_path,
            "BENCH_training.json",
            [{"benchmark": "engine_pretrain", "samples_per_sec": 100.0}],
        )
        names = [path.name for path in discover_bench_files(tmp_path)]
        # pipeline order for known files, alphabetical tail for newcomers
        assert names == [
            "BENCH_training.json",
            "BENCH_serving.json",
            "BENCH_future_module.json",
        ]
        report = build_report(tmp_path)
        assert "open_loop" in report and "requests_per_sec" in report
        assert "p99_latency_ms" in report
        assert "new_thing" in report

    def test_main_prints_report(self, tmp_path, capsys):
        from repro.utils.bench_report import main

        self._write(
            tmp_path,
            "BENCH_inference.json",
            [{"benchmark": "predict_fused", "fused_speedup": 1.5}],
        )
        assert main(["--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "predict_fused" in out and "fused_speedup" in out
