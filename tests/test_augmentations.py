"""Tests for the augmentation operations and the augmentation bank."""

from __future__ import annotations

import numpy as np
import pytest

from repro.augmentations import (
    DEFAULT_BANK,
    AugmentationBank,
    Compose,
    Identity,
    Jitter,
    Masking,
    Permutation,
    Scaling,
    Slicing,
    TimeWarp,
    WindowWarp,
    default_bank,
)

ALL_AUGMENTATIONS = [Jitter, Scaling, TimeWarp, Slicing, WindowWarp, Permutation, Masking]


@pytest.fixture
def sample(rng):
    return rng.normal(size=(2, 48))


@pytest.fixture
def batch(rng):
    return rng.normal(size=(5, 2, 48))


@pytest.mark.parametrize("augmentation_cls", ALL_AUGMENTATIONS)
class TestEveryAugmentation:
    def test_preserves_shape_single_sample(self, augmentation_cls, sample):
        out = augmentation_cls(seed=0)(sample)
        assert out.shape == sample.shape

    def test_preserves_shape_batch(self, augmentation_cls, batch):
        out = augmentation_cls(seed=0)(batch)
        assert out.shape == batch.shape

    def test_output_is_finite(self, augmentation_cls, batch):
        assert np.all(np.isfinite(augmentation_cls(seed=0)(batch)))

    def test_changes_the_input(self, augmentation_cls, sample):
        out = augmentation_cls(seed=0)(sample)
        assert not np.array_equal(out, sample)

    def test_two_calls_differ(self, augmentation_cls, sample):
        augmentation = augmentation_cls(seed=0)
        first = augmentation(sample)
        second = augmentation(sample)
        assert not np.array_equal(first, second)

    def test_does_not_mutate_input(self, augmentation_cls, sample):
        original = sample.copy()
        augmentation_cls(seed=0)(sample)
        np.testing.assert_array_equal(sample, original)

    def test_rejects_bad_dimensionality(self, augmentation_cls, rng):
        with pytest.raises(ValueError):
            augmentation_cls(seed=0)(rng.normal(size=(48,)))


class TestSpecificBehaviours:
    def test_identity_is_noop(self, sample):
        np.testing.assert_array_equal(Identity()(sample), sample)

    def test_jitter_noise_scale(self, rng):
        x = np.zeros((1, 2000))
        out = Jitter(sigma=0.1, seed=0)(x)
        assert 0.05 < out.std() < 0.15

    def test_jitter_rejects_nonpositive_sigma(self):
        with pytest.raises(ValueError):
            Jitter(sigma=0.0)

    def test_scaling_is_per_variable_multiplicative(self, rng):
        x = np.ones((3, 30))
        out = Scaling(sigma=0.2, seed=0)(x)
        # each variable is multiplied by one constant
        for row in out:
            assert np.allclose(row, row[0])

    def test_time_warp_preserves_value_range_roughly(self, rng):
        x = np.sin(np.linspace(0, 6 * np.pi, 100))[None, :]
        out = TimeWarp(strength=0.05, seed=0)(x)
        assert out.min() >= -1.2 and out.max() <= 1.2

    def test_slicing_zooms_into_a_window(self):
        # a ramp that is sliced and re-stretched stays monotone
        x = np.linspace(0, 1, 60)[None, :]
        out = Slicing(crop_ratio=0.5, seed=0)(x)
        assert np.all(np.diff(out[0]) >= -1e-9)
        assert out[0].max() - out[0].min() < 1.0  # a strict sub-range of values

    def test_slicing_rejects_tiny_crop(self):
        with pytest.raises(ValueError):
            Slicing(crop_ratio=0.05)

    def test_window_warp_keeps_endpoints_close(self):
        x = np.linspace(0, 1, 80)[None, :]
        out = WindowWarp(window_ratio=0.3, seed=0)(x)
        assert abs(out[0, 0] - 0.0) < 0.1
        assert abs(out[0, -1] - 1.0) < 0.1

    def test_permutation_preserves_value_multiset(self, rng):
        x = rng.normal(size=(1, 30))
        out = Permutation(max_segments=4, seed=0)(x)
        np.testing.assert_allclose(np.sort(out[0]), np.sort(x[0]))

    def test_masking_zeroes_a_window(self, rng):
        x = rng.normal(size=(2, 50)) + 10.0
        out = Masking(mask_ratio=0.3, seed=0)(x)
        n_zero = (out == 0).sum(axis=1)
        assert np.all(n_zero >= 10)

    def test_compose_applies_in_sequence(self, sample):
        composed = Compose([Scaling(sigma=0.1, seed=0), Jitter(sigma=0.05, seed=0)])
        out = composed(sample)
        assert out.shape == sample.shape
        assert composed.name == "scaling+jitter"

    def test_compose_rejects_empty(self):
        with pytest.raises(ValueError):
            Compose([])


class TestAugmentationBank:
    def test_default_bank_matches_paper(self):
        bank = default_bank(seed=0)
        assert len(bank) == 5
        assert tuple(bank.names) == DEFAULT_BANK

    def test_bank_rejects_empty(self):
        with pytest.raises(ValueError):
            AugmentationBank([])

    def test_augment_batch_shape(self, batch):
        bank = default_bank(seed=0)
        out = bank.augment_batch(batch)
        assert out.shape == (5,) + batch.shape

    def test_two_views_are_independent(self, batch):
        bank = default_bank(seed=0)
        views_a, views_b = bank.two_views(batch)
        assert views_a.shape == views_b.shape == (5,) + batch.shape
        assert not np.allclose(views_a, views_b)

    def test_bank_iteration(self):
        bank = default_bank(seed=0)
        assert len(list(iter(bank))) == 5
