"""Property-based tests for the evaluation metrics and data utilities."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.fewshot import few_shot_subset
from repro.data.dataset import DatasetSplit
from repro.data.loaders import pad_or_truncate, z_normalize
from repro.evaluation.metrics import average_accuracy, average_rank, num_top1

accuracy_value = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64)


@st.composite
def results_dicts(draw):
    n_methods = draw(st.integers(2, 5))
    n_datasets = draw(st.integers(2, 6))
    methods = [f"m{i}" for i in range(n_methods)]
    datasets = [f"d{j}" for j in range(n_datasets)]
    return {
        method: {dataset: draw(accuracy_value) for dataset in datasets} for method in methods
    }


@settings(max_examples=40, deadline=None)
@given(results_dicts())
def test_average_accuracy_within_bounds(results):
    for value in average_accuracy(results).values():
        assert 0.0 <= value <= 1.0


@settings(max_examples=40, deadline=None)
@given(results_dicts())
def test_average_ranks_sum_is_constant(results):
    ranks = average_rank(results)
    n_methods = len(results)
    expected_total = n_methods * (n_methods + 1) / 2
    assert np.isclose(sum(ranks.values()), expected_total, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(results_dicts())
def test_num_top1_never_exceeds_dataset_count(results):
    n_datasets = len(next(iter(results.values())))
    top1 = num_top1(results)
    assert sum(top1.values()) <= n_datasets
    assert all(count >= 0 for count in top1.values())


@settings(max_examples=40, deadline=None)
@given(results_dicts(), st.floats(min_value=0.01, max_value=0.2))
def test_dominant_method_gets_best_rank_and_accuracy(results, margin):
    # add a method that strictly dominates every other on every dataset: it
    # must win on both aggregate metrics and collect every Top-1 count
    datasets = list(next(iter(results.values())))
    results = dict(results)
    results["dominant"] = {
        d: min(1.0 + margin, max(results[m][d] for m in results) + margin) for d in datasets
    }
    acc = average_accuracy(results)
    ranks = average_rank(results)
    top1 = num_top1(results)
    assert max(acc, key=acc.get) == "dominant"
    assert min(ranks, key=ranks.get) == "dominant"
    assert ranks["dominant"] == 1.0
    assert top1["dominant"] == len(datasets)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(2, 6),
    st.integers(10, 40),
    st.integers(8, 64),
    st.integers(16, 64),
)
def test_pad_or_truncate_always_hits_target_length(n_vars, n_samples, length, target):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(n_samples, n_vars, length))
    out = pad_or_truncate(X, target)
    assert out.shape == (n_samples, n_vars, target)
    assert np.all(np.isfinite(out))


@settings(max_examples=30, deadline=None)
@given(st.integers(4, 30), st.integers(2, 4), st.integers(8, 40))
def test_z_normalize_is_idempotent(n, m, t):
    rng = np.random.default_rng(1)
    X = rng.normal(loc=3.0, scale=7.0, size=(n, m, t))
    once = z_normalize(X)
    twice = z_normalize(once)
    np.testing.assert_allclose(once, twice, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0.05, max_value=1.0), st.integers(2, 4), st.integers(0, 1000))
def test_few_shot_subset_invariants(ratio, n_classes, seed):
    rng = np.random.default_rng(seed)
    n = 40
    split = DatasetSplit(rng.normal(size=(n, 1, 16)), rng.integers(0, n_classes, size=n))
    # ensure every class occurs at least once
    split.y[:n_classes] = np.arange(n_classes)
    subset = few_shot_subset(split, ratio, seed=seed)
    assert len(subset) <= len(split)
    assert set(np.unique(subset.y)) == set(np.unique(split.y))
    # ratio=1 keeps everything
    if ratio == 1.0:
        assert len(subset) == len(split)
