"""Protocol-conformance tests: every registered estimator obeys the contract.

One parametrised test drives each estimator in the registry through the full
life cycle — ``pretrain → fine_tune → predict → save → load → predict`` — on
a tiny synthetic dataset and asserts byte-identical predictions after the
full-bundle round trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Estimator, estimator_names, load_estimator, make_estimator
from repro.core.config import FineTuneConfig
from repro.core.finetuner import FineTuneResult
from repro.data.archives import make_dataset

#: shared tiny scale for the neural estimators
_TINY_NEURAL = dict(
    repr_dim=10,
    proj_dim=5,
    hidden_channels=5,
    depth=1,
    series_length=32,
    batch_size=8,
    epochs=1,
    seed=0,
)

#: per-estimator construction overrides keeping the test fast on CPU
TINY_OVERRIDES = {
    "aimts": dict(panel_size=16, augmentation_names=("jitter", "scaling"), **_TINY_NEURAL),
    "ts2vec": _TINY_NEURAL,
    "tstcc": _TINY_NEURAL,
    "tloss": _TINY_NEURAL,
    "tnc": _TINY_NEURAL,
    "simclr": _TINY_NEURAL,
    "moment": _TINY_NEURAL,
    "units": _TINY_NEURAL,
    "supervised_cnn": dict(hidden_channels=5, repr_dim=10, depth=1, epochs=2, seed=0),
    "linear": dict(),
    "rocket": dict(n_kernels=16, seed=0),
    "minirocket": dict(n_kernels=16, seed=0),
}


@pytest.fixture(scope="module")
def conformance_dataset():
    return make_dataset(
        "conformance", "ecg", n_classes=2, n_train=12, n_test=8, length=32, n_variables=1, seed=0
    )


@pytest.fixture(scope="module")
def pretrain_pool():
    return np.random.default_rng(0).normal(size=(10, 1, 32))


def test_every_estimator_has_tiny_overrides():
    """Keep TINY_OVERRIDES in sync with the registry."""
    assert set(TINY_OVERRIDES) == set(estimator_names())


@pytest.mark.parametrize("name", sorted(TINY_OVERRIDES))
def test_full_life_cycle_conformance(name, tmp_path, conformance_dataset, pretrain_pool):
    dataset = conformance_dataset
    estimator = make_estimator(name, **TINY_OVERRIDES[name])
    assert isinstance(estimator, Estimator)
    assert estimator.api_name == name

    # pretrain: real work for self-supervised models, a documented no-op otherwise
    estimator.pretrain(pretrain_pool)
    if estimator.supports_pretraining:
        assert estimator.is_pretrained

    finetune_config = FineTuneConfig(epochs=2, batch_size=8, classifier_hidden_dim=8, seed=0)
    result = estimator.fine_tune(dataset, finetune_config)
    assert isinstance(result, FineTuneResult)
    assert 0.0 <= result.accuracy <= 1.0
    assert result.dataset == dataset.name

    predictions = estimator.predict(dataset.test.X)
    probabilities = estimator.predict_proba(dataset.test.X)
    assert predictions.shape == (len(dataset.test),)
    assert probabilities.shape == (len(dataset.test), dataset.n_classes)
    np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)
    np.testing.assert_array_equal(probabilities.argmax(axis=1), predictions)

    representations = estimator.encode(dataset.test.X)
    assert representations.ndim == 2
    assert representations.shape[0] == len(dataset.test)

    # full-bundle round trip through the registry: byte-identical predictions
    path = estimator.save(tmp_path / f"{name}-bundle")
    clone = load_estimator(path)
    assert type(clone) is type(estimator)
    np.testing.assert_array_equal(clone.predict(dataset.test.X), predictions)
    np.testing.assert_array_equal(clone.predict_proba(dataset.test.X), probabilities)


@pytest.mark.parametrize("name", sorted(TINY_OVERRIDES))
def test_instance_load_matches_saved_state(name, tmp_path, conformance_dataset, pretrain_pool):
    """``est.load(path)`` on a fresh same-config instance restores predictions."""
    dataset = conformance_dataset
    estimator = make_estimator(name, **TINY_OVERRIDES[name])
    estimator.pretrain(pretrain_pool)
    finetune_config = FineTuneConfig(epochs=1, batch_size=8, classifier_hidden_dim=8, seed=0)
    estimator.fine_tune(dataset, finetune_config)
    predictions = estimator.predict(dataset.test.X)

    path = estimator.save(tmp_path / f"{name}-instance")
    fresh = make_estimator(name, **TINY_OVERRIDES[name]).load(path)
    np.testing.assert_array_equal(fresh.predict(dataset.test.X), predictions)
