"""Tests for the comparison baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BaselineConfig,
    LinearClassifier,
    MiniRocket,
    MomentLike,
    Rocket,
    SimCLR,
    SupervisedCNN,
    TLoss,
    TNC,
    TS2Vec,
    TSTCC,
    UniTSLike,
)
from repro.core.config import FineTuneConfig
from repro.data import load_pretraining_corpus

CONTRASTIVE_BASELINES = [TS2Vec, TSTCC, TLoss, TNC, SimCLR]
FOUNDATION_BASELINES = [MomentLike, UniTSLike]


@pytest.fixture
def baseline_config():
    return BaselineConfig(
        repr_dim=12, proj_dim=6, hidden_channels=6, depth=1, series_length=48, batch_size=6, epochs=1, seed=0
    )


@pytest.fixture
def finetune_config():
    return FineTuneConfig(epochs=5, batch_size=8, classifier_hidden_dim=16, seed=0)


class TestBaselineConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            BaselineConfig(repr_dim=0)
        with pytest.raises(ValueError):
            BaselineConfig(learning_rate=0.0)


@pytest.mark.parametrize("baseline_cls", CONTRASTIVE_BASELINES + FOUNDATION_BASELINES)
class TestSelfSupervisedBaselines:
    def test_batch_loss_is_finite_scalar(self, baseline_cls, baseline_config, small_dataset):
        baseline = baseline_cls(baseline_config)
        loss = baseline.batch_loss(small_dataset.train.X[:6])
        assert loss.size == 1
        assert np.isfinite(loss.item())

    def test_batch_loss_differentiable(self, baseline_cls, baseline_config, small_dataset):
        baseline = baseline_cls(baseline_config)
        baseline.batch_loss(small_dataset.train.X[:6]).backward()
        assert any(p.grad is not None for p in baseline.encoder.parameters())

    def test_pretrain_returns_loss_curve(self, baseline_cls, baseline_config, small_dataset):
        baseline = baseline_cls(baseline_config)
        curve = baseline.pretrain(small_dataset.train.X, epochs=2)
        assert len(curve) == 2
        assert all(np.isfinite(v) for v in curve)

    def test_fine_tune_after_pretrain(self, baseline_cls, baseline_config, finetune_config, small_dataset):
        baseline = baseline_cls(baseline_config)
        baseline.pretrain(small_dataset.train.X, epochs=1)
        result = baseline.fine_tune(small_dataset, finetune_config)
        assert 0.0 <= result.accuracy <= 1.0

    def test_encode_shape(self, baseline_cls, baseline_config, small_dataset):
        baseline = baseline_cls(baseline_config)
        representations = baseline.encode(small_dataset.train.X[:5])
        assert representations.shape == (5, baseline_config.repr_dim)

    def test_fine_tune_does_not_mutate_pretrained_encoder(
        self, baseline_cls, baseline_config, finetune_config, small_dataset
    ):
        baseline = baseline_cls(baseline_config)
        before = baseline.encoder.state_dict()["input_conv.weight"].copy()
        baseline.fine_tune(small_dataset, finetune_config)
        np.testing.assert_array_equal(before, baseline.encoder.state_dict()["input_conv.weight"])


class TestMultiSourceBaselines:
    def test_pretrain_multi_source(self, baseline_config, finetune_config, small_dataset):
        corpus = load_pretraining_corpus("monash", n_datasets=2, seed=0)
        baseline = MomentLike(baseline_config)
        curve = baseline.pretrain_multi_source(corpus, max_samples=12, epochs=1)
        assert len(curve) == 1
        result = baseline.fine_tune(small_dataset, finetune_config, label_ratio=0.5)
        assert 0.0 <= result.accuracy <= 1.0

    def test_units_combines_reconstruction_and_contrast(self, baseline_config, small_dataset):
        units = UniTSLike(baseline_config, contrastive_weight=0.5)
        moment = MomentLike(baseline_config)
        batch = small_dataset.train.X[:6]
        assert units.batch_loss(batch).item() != pytest.approx(moment.batch_loss(batch).item())

    def test_ts2vec_supports_multi_source_pretraining(self, baseline_config):
        corpus = load_pretraining_corpus("monash", n_datasets=2, seed=0)
        baseline = TS2Vec(baseline_config)
        curve = baseline.pretrain_multi_source(corpus, max_samples=10, epochs=1)
        assert len(curve) == 1


class TestRocketFamily:
    def test_rocket_learns_separable_dataset(self, small_dataset):
        accuracy = Rocket(n_kernels=80, seed=0).fit_and_evaluate(small_dataset)
        assert accuracy > 0.7

    def test_minirocket_learns_separable_dataset(self, small_dataset):
        accuracy = MiniRocket(n_kernels=80, seed=0).fit_and_evaluate(small_dataset)
        assert accuracy > 0.7

    def test_rocket_multivariate(self, small_multivariate_dataset):
        accuracy = Rocket(n_kernels=60, seed=0).fit_and_evaluate(small_multivariate_dataset)
        assert accuracy > 1.0 / small_multivariate_dataset.n_classes

    def test_rocket_predict_before_fit_raises(self, small_dataset):
        with pytest.raises(RuntimeError):
            Rocket(n_kernels=10).predict(small_dataset.test.X)

    def test_rocket_feature_count(self, small_dataset):
        rocket = Rocket(n_kernels=16, seed=0)
        rocket._generate_kernels(small_dataset.length)
        features = rocket._transform(small_dataset.train.X[:3])
        assert features.shape == (3, 32)  # max + PPV per kernel

    def test_minirocket_uses_ppv_only(self, small_dataset):
        mini = MiniRocket(n_kernels=16, seed=0)
        mini._generate_kernels(small_dataset.length)
        features = mini._transform(small_dataset.train.X[:3])
        assert features.shape == (3, 16)
        assert np.all((features >= 0) & (features <= 1))

    def test_rocket_deterministic_given_seed(self, small_dataset):
        a = Rocket(n_kernels=40, seed=1).fit_and_evaluate(small_dataset)
        b = Rocket(n_kernels=40, seed=1).fit_and_evaluate(small_dataset)
        assert a == pytest.approx(b)

    def test_refit_after_fine_tune_clears_stale_label_map(
        self, small_dataset, small_multivariate_dataset
    ):
        """A direct re-fit on a task with more classes must not keep the old map."""
        rocket = Rocket(n_kernels=16, seed=0)
        rocket.fine_tune(small_dataset)  # 2 classes
        rocket.fit(small_multivariate_dataset.train.X, small_multivariate_dataset.train.y)
        predictions = rocket.predict(small_multivariate_dataset.test.X)  # 3 classes
        assert predictions.max() < small_multivariate_dataset.n_classes

        linear = LinearClassifier()
        linear.fine_tune(small_dataset)
        linear.fit(small_multivariate_dataset.train.X, small_multivariate_dataset.train.y)
        predictions = linear.predict(small_multivariate_dataset.test.X)
        assert predictions.max() < small_multivariate_dataset.n_classes

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Rocket(n_kernels=0)
        with pytest.raises(ValueError):
            LinearClassifier(ridge=0.0)


class TestSupervisedBaselines:
    def test_supervised_cnn_learns(self, small_dataset):
        accuracy = SupervisedCNN(epochs=15, hidden_channels=8, repr_dim=16, seed=0).fit_and_evaluate(small_dataset)
        assert accuracy > 0.6

    def test_linear_classifier_learns(self, small_dataset):
        accuracy = LinearClassifier().fit_and_evaluate(small_dataset)
        assert accuracy > 0.6

    def test_linear_classifier_predict_before_fit(self, small_dataset):
        with pytest.raises(RuntimeError):
            LinearClassifier().predict(small_dataset.test.X)

    def test_linear_classifier_multiclass(self, small_multivariate_dataset):
        accuracy = LinearClassifier().fit_and_evaluate(small_multivariate_dataset)
        assert accuracy > 1.0 / small_multivariate_dataset.n_classes
