"""Tests for the out-of-core sharded corpus store (``repro.data.corpus``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.corpus import (
    CorpusFormatError,
    CorpusWriter,
    ShardedCorpus,
    build_synthetic_corpus,
    generate_family_samples,
    is_sharded_corpus,
    read_manifest,
)
from repro.data.corpus.__main__ import main as corpus_cli
from repro.data.loaders import BatchIterator, build_pretraining_pool


@pytest.fixture
def samples(rng) -> tuple[np.ndarray, np.ndarray]:
    X = rng.normal(size=(23, 2, 16)).astype(np.float32)
    y = rng.integers(0, 4, size=23)
    return X, y


def write_corpus(directory, X, y=None, **kwargs):
    with CorpusWriter(
        directory, X.shape[1:], dtype=X.dtype, labeled=y is not None, **kwargs
    ) as writer:
        writer.append(X, y)
    return ShardedCorpus(directory)


class TestWriterReaderRoundTrip:
    def test_byte_identical_round_trip(self, tmp_path, samples):
        X, y = samples
        corpus = write_corpus(tmp_path / "c", X, y, shard_size=7)
        assert len(corpus) == 23
        assert corpus.n_shards == 4  # 7 + 7 + 7 + 2
        assert corpus.shard_sizes == [7, 7, 7, 2]
        assert corpus.sample_shape == (2, 16)
        assert corpus.dtype == np.float32
        np.testing.assert_array_equal(corpus.materialize(), X)
        np.testing.assert_array_equal(corpus.labels, y)
        assert corpus.materialize().dtype == X.dtype
        assert corpus.verify() == []

    def test_per_sample_and_batch_appends_agree(self, tmp_path, samples):
        X, y = samples
        one = write_corpus(tmp_path / "batched", X, y, shard_size=5)
        with CorpusWriter(
            tmp_path / "single", X.shape[1:], dtype=X.dtype, labeled=True, shard_size=5
        ) as writer:
            for sample, label in zip(X, y):
                writer.append(sample, label)
        other = ShardedCorpus(tmp_path / "single")
        np.testing.assert_array_equal(one.materialize(), other.materialize())
        np.testing.assert_array_equal(one.labels, other.labels)

    def test_gather_groups_by_shard(self, tmp_path, samples):
        X, y = samples
        corpus = write_corpus(tmp_path / "c", X, y, shard_size=6)
        indices = np.array([22, 0, 13, 13, 5, 18])  # out of order, repeated
        np.testing.assert_array_equal(corpus.gather(indices), X[indices])
        np.testing.assert_array_equal(corpus.gather_labels(indices), y[indices])
        with pytest.raises(IndexError):
            corpus.gather(np.array([23]))

    def test_unlabeled_corpus(self, tmp_path, samples):
        X, _ = samples
        corpus = write_corpus(tmp_path / "c", X, shard_size=9)
        assert corpus.labeled is False
        assert corpus.labels is None
        assert corpus.gather_labels(np.array([0, 1])) is None
        with pytest.raises(ValueError):
            with CorpusWriter(tmp_path / "d", X.shape[1:]) as writer:
                writer.append(X, np.zeros(len(X), dtype=np.int64))

    def test_memmap_views_are_zero_copy(self, tmp_path, samples):
        X, y = samples
        corpus = write_corpus(tmp_path / "c", X, y, shard_size=9)
        assert isinstance(corpus.shard_data(0), np.memmap)
        in_ram = ShardedCorpus(tmp_path / "c", mmap=False)
        assert not isinstance(in_ram.shard_data(0), np.memmap)
        np.testing.assert_array_equal(in_ram.materialize(), X)

    def test_overwrite_semantics(self, tmp_path, samples):
        X, y = samples
        write_corpus(tmp_path / "c", X, y, shard_size=4)
        with pytest.raises(FileExistsError):
            CorpusWriter(tmp_path / "c", X.shape[1:])
        smaller = write_corpus(tmp_path / "c", X[:5], y[:5], shard_size=50, overwrite=True)
        assert len(smaller) == 5
        assert smaller.verify() == []  # no stale shards left behind

    def test_append_after_close_and_shape_mismatch(self, tmp_path, samples):
        X, y = samples
        writer = CorpusWriter(tmp_path / "c", (2, 16), labeled=True)
        with pytest.raises(ValueError):
            writer.append(np.zeros((3, 1, 16)), np.zeros(3, dtype=np.int64))
        writer.append(X, y)
        writer.close()
        with pytest.raises(RuntimeError):
            writer.append(X, y)

    def test_crashed_build_leaves_unreadable_directory(self, tmp_path, samples):
        X, y = samples
        with pytest.raises(RuntimeError):
            with CorpusWriter(tmp_path / "c", (2, 16), labeled=True, shard_size=4) as writer:
                writer.append(X, y)
                raise RuntimeError("boom")
        with pytest.raises(CorpusFormatError):
            ShardedCorpus(tmp_path / "c")  # shards exist, manifest does not


class TestChecksums:
    def test_verify_detects_flipped_byte(self, tmp_path, samples):
        X, y = samples
        corpus = write_corpus(tmp_path / "c", X, y, shard_size=8)
        victim = tmp_path / "c" / corpus.manifest["shards"][1]["data"]
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(raw)
        fresh = ShardedCorpus(tmp_path / "c")
        assert fresh.verify() == [corpus.manifest["shards"][1]["data"]]

    def test_verify_detects_missing_label_file(self, tmp_path, samples):
        X, y = samples
        corpus = write_corpus(tmp_path / "c", X, y, shard_size=8)
        (tmp_path / "c" / corpus.manifest["shards"][0]["labels"]).unlink()
        assert ShardedCorpus(tmp_path / "c").verify() == [
            corpus.manifest["shards"][0]["labels"]
        ]

    def test_manifest_format_checks(self, tmp_path, samples):
        X, y = samples
        with pytest.raises(CorpusFormatError):
            read_manifest(tmp_path)  # no manifest at all
        write_corpus(tmp_path / "c", X, y)
        manifest = read_manifest(tmp_path / "c")
        assert manifest["format"] == "repro-corpus"
        assert manifest["schema_version"] == 1


class TestShardBoundaryDeterminism:
    def test_shard_size_does_not_change_the_bytes(self, tmp_path):
        """The ISSUE contract: shard_size=1000 vs 4096 is byte-identical."""
        kwargs = dict(families=["ecg", "motion"], n_samples=2500, length=24, seed=11)
        a = build_synthetic_corpus(tmp_path / "a", shard_size=1000, **kwargs)
        b = build_synthetic_corpus(tmp_path / "b", shard_size=4096, **kwargs)
        assert a.n_shards == 3 and b.n_shards == 1
        np.testing.assert_array_equal(a.materialize(), b.materialize())
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_streaming_matches_one_shot_generation_per_family(self, tmp_path):
        corpus = build_synthetic_corpus(
            tmp_path / "c",
            ["ecg", ("shapes", {"n_classes": 3})],
            300,
            length=24,
            shard_size=64,
            block_size=100,
            seed=5,
            dtype="float64",
        )
        start = 0
        for family_index, entry in enumerate(corpus.provenance["families"]):
            X_ref, y_ref = generate_family_samples(
                (entry["name"], entry["kwargs"]),
                entry["n_samples"],
                seed=5,
                family_index=family_index,
                length=24,
                block_size=100,
            )
            stop = start + entry["n_samples"]
            got = corpus.gather(np.arange(start, stop))
            np.testing.assert_array_equal(got, X_ref)
            np.testing.assert_array_equal(
                corpus.gather_labels(np.arange(start, stop)),
                y_ref + entry["label_offset"],
            )
            start = stop
        assert start == len(corpus)

    def test_block_size_is_the_only_generation_knob(self, tmp_path):
        same = dict(families=["ecg"], n_samples=120, length=24, seed=3)
        a = build_synthetic_corpus(tmp_path / "a", block_size=40, **same)
        b = build_synthetic_corpus(tmp_path / "b", block_size=60, **same)
        assert not np.array_equal(a.materialize(), b.materialize())


class TestIteration:
    def make(self, tmp_path, n=50, shard_size=8):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(n, 1, 8)).astype(np.float32)
        y = rng.integers(0, 3, size=n)
        return write_corpus(tmp_path / "c", X, y, shard_size=shard_size), X, y

    def test_epoch_covers_every_index_once(self, tmp_path):
        corpus, _, _ = self.make(tmp_path)
        batches = list(corpus.iter_index_batches(7, rng=0))
        assert sorted(np.concatenate(batches).tolist()) == list(range(50))
        assert [len(b) for b in batches[:-1]] == [7] * (len(batches) - 1)

    def test_seeded_iteration_is_deterministic(self, tmp_path):
        corpus, _, _ = self.make(tmp_path)
        a = [b.tolist() for b in corpus.iter_index_batches(7, rng=123)]
        b = [b.tolist() for b in corpus.iter_index_batches(7, rng=123)]
        c = [b.tolist() for b in corpus.iter_index_batches(7, rng=124)]
        assert a == b
        assert a != c

    def test_unshuffled_iteration_is_sequential(self, tmp_path):
        corpus, _, _ = self.make(tmp_path)
        flat = np.concatenate(list(corpus.iter_index_batches(7, shuffle=False)))
        np.testing.assert_array_equal(flat, np.arange(50))

    def test_single_shard_matches_in_ram_global_shuffle(self, tmp_path):
        """The ordering contract BatchIterator's bit-identity rests on."""
        corpus, X, _ = self.make(tmp_path, n=50, shard_size=64)
        assert corpus.n_shards == 1
        flat = np.concatenate(list(corpus.iter_index_batches(7, rng=np.random.default_rng(9))))
        order = np.arange(50)
        np.random.default_rng(9).shuffle(order)
        np.testing.assert_array_equal(flat, order)

    def test_batches_for_epoch_is_stateless_and_epoch_keyed(self, tmp_path):
        corpus, _, _ = self.make(tmp_path)
        first = [b.tolist() for b in corpus.batches_for_epoch(7, epoch=3, seed=11)]
        again = [b.tolist() for b in corpus.batches_for_epoch(7, epoch=3, seed=11)]
        other = [b.tolist() for b in corpus.batches_for_epoch(7, epoch=4, seed=11)]
        assert first == again  # no shared iterator advanced between calls
        assert first != other  # epochs reshuffle
        assert sorted(np.concatenate(first).tolist()) == list(range(50))
        # the schedule is the shard-aware algorithm under the derived rng
        derived = np.random.default_rng(np.random.SeedSequence([11, 3]))
        reference = [b.tolist() for b in corpus.iter_index_batches(7, rng=derived)]
        assert first == reference

    def test_peek_ahead_matches_schedule_prefix(self, tmp_path):
        corpus, _, _ = self.make(tmp_path)
        schedule = list(corpus.batches_for_epoch(7, epoch=2, seed=5))
        window = corpus.peek_ahead(3, 7, epoch=2, seed=5)
        assert [b.tolist() for b in window] == [b.tolist() for b in schedule[:3]]
        # peeking never perturbs a later full-epoch regeneration
        again = list(corpus.batches_for_epoch(7, epoch=2, seed=5))
        assert [b.tolist() for b in again] == [b.tolist() for b in schedule]

    def test_subset_iteration_and_gather(self, tmp_path):
        corpus, X, y = self.make(tmp_path)
        subset = corpus.subset(max_samples=20, seed=1)
        assert len(subset) == 20
        flat = np.concatenate(list(subset.iter_index_batches(6, rng=0)))
        assert sorted(flat.tolist()) == list(range(20))
        local = np.array([3, 0, 11])
        np.testing.assert_array_equal(subset.gather(local), X[subset.indices[local]])
        np.testing.assert_array_equal(subset.gather_labels(local), y[subset.indices[local]])
        # max_samples >= len is the identity
        assert len(corpus.subset(max_samples=500)) == 50
        with pytest.raises(ValueError):
            corpus.subset(np.arange(3), max_samples=5)


class TestLoaderIntegration:
    def test_batch_iterator_over_corpus(self, tmp_path, samples):
        X, y = samples
        corpus = write_corpus(tmp_path / "c", X, y, shard_size=6)
        assert is_sharded_corpus(corpus)
        iterator = BatchIterator(
            corpus, batch_size=5, seed=0, dtype="float64", return_indices=True
        )
        assert len(iterator) == 5
        seen = []
        for batch, labels, indices in iterator:
            assert batch.dtype == np.float64
            np.testing.assert_array_equal(batch, X[indices].astype(np.float64))
            np.testing.assert_array_equal(labels, y[indices])
            seen.extend(indices.tolist())
        assert sorted(seen) == list(range(23))

    def test_single_shard_corpus_is_bit_identical_to_in_ram(self, tmp_path, samples):
        X, y = samples
        corpus = write_corpus(tmp_path / "c", X, y, shard_size=64)
        from_corpus = [
            indices.tolist()
            for _, _, indices in BatchIterator(corpus, batch_size=5, seed=7, return_indices=True)
        ]
        from_ram = [
            indices.tolist()
            for _, _, indices in BatchIterator(X, y, batch_size=5, seed=7, return_indices=True)
        ]
        assert from_corpus == from_ram

    def test_build_pretraining_pool_passthrough(self, tmp_path):
        corpus = build_synthetic_corpus(tmp_path / "c", ["ecg"], 60, length=24, seed=0)
        assert build_pretraining_pool(corpus, length=24, n_variables=1) is corpus
        subset = build_pretraining_pool(corpus, length=24, n_variables=1, max_samples=10, seed=0)
        assert len(subset) == 10
        with pytest.raises(ValueError):
            build_pretraining_pool(corpus, length=48, n_variables=1)


class TestPretrainerIntegration:
    def test_corpus_losses_bit_identical_to_in_ram_pool(self, tmp_path):
        from repro.core import AimTSConfig, AimTSPretrainer

        corpus = build_synthetic_corpus(
            tmp_path / "c", ["ecg"], 24, length=32, shard_size=4096, seed=7,
            dtype="float64",
        )
        cfg = dict(
            series_length=32, n_variables=1, panel_size=16, epochs=2,
            batch_size=8, hidden_channels=8, repr_dim=16, proj_dim=8,
        )
        in_ram = AimTSPretrainer(AimTSConfig(**cfg)).fit(corpus.materialize())
        streamed = AimTSPretrainer(AimTSConfig(**cfg)).fit(corpus)
        assert in_ram.total_loss == streamed.total_loss
        assert in_ram.prototype_loss == streamed.prototype_loss
        assert in_ram.series_image_loss == streamed.series_image_loss

    def test_corpus_pretrain_with_spill_renders_each_sample_once(self, tmp_path):
        from repro.core import AimTSConfig, AimTSPretrainer

        corpus = build_synthetic_corpus(
            tmp_path / "c", ["ecg", "motion"], 60, length=32, shard_size=16, seed=7
        )
        cfg = AimTSConfig(
            series_length=32, n_variables=1, panel_size=16, epochs=2,
            batch_size=8, hidden_channels=8, repr_dim=16, proj_dim=8,
            compute_dtype="float32",
            cache_max_bytes=10 * 16 * 16 * 8,  # ~10 images in RAM
            cache_spill_dir=str(tmp_path / "spill"),
        )
        pretrainer = AimTSPretrainer(cfg)
        history = pretrainer.fit(corpus)
        assert len(history) == 2
        stats = pretrainer.render_cache.stats()
        assert stats["rendered_samples"] == 60  # render-once across both epochs
        assert stats["spill_entries"] > 0
        assert stats["disk_hits"] > 0
        assert stats["readback_failures"] == 0


class TestCommandLine:
    def test_build_inspect_verify(self, tmp_path, capsys):
        out = str(tmp_path / "c")
        assert (
            corpus_cli(
                [
                    "build", "--out", out, "--families", "ecg,motion",
                    "--n-samples", "100", "--length", "24", "--shard-size", "32",
                    "--seed", "1",
                ]
            )
            == 0
        )
        assert "built 100 samples" in capsys.readouterr().out
        assert corpus_cli(["inspect", out]) == 0
        text = capsys.readouterr().out
        assert "samples      100" in text
        assert "family ecg" in text
        assert corpus_cli(["inspect", out, "--json"]) == 0
        assert '"repro-corpus"' in capsys.readouterr().out
        assert corpus_cli(["verify", out]) == 0
        assert "all checksums match" in capsys.readouterr().out

    def test_verify_exits_nonzero_on_corruption(self, tmp_path, capsys):
        out = str(tmp_path / "c")
        corpus_cli(["build", "--out", out, "--families", "ecg", "--n-samples", "40",
                    "--length", "24", "--shard-size", "16"])
        capsys.readouterr()
        victim = tmp_path / "c" / "shard-00001.npy"
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(raw)
        assert corpus_cli(["verify", out]) == 1
        text = capsys.readouterr().out
        assert "CORRUPT" in text and "shard-00001.npy" in text

    def test_unknown_family_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            corpus_cli(["build", "--out", str(tmp_path / "c"), "--families", "nope"])
