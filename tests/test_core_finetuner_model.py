"""Tests for fine-tuning, the high-level AimTS model and checkpointing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AimTS, AimTSConfig, FineTuneConfig, FineTuner
from repro.data import load_pretraining_corpus
from repro.encoders import TSEncoder


@pytest.fixture(scope="module")
def pretrained_model():
    """One small pre-trained AimTS model shared by the model-level tests."""
    config = AimTSConfig(
        repr_dim=16,
        proj_dim=8,
        hidden_channels=8,
        depth=2,
        panel_size=16,
        series_length=48,
        batch_size=8,
        epochs=1,
        seed=0,
    )
    model = AimTS(config)
    corpus = load_pretraining_corpus("monash", n_datasets=3, seed=0)
    model.pretrain(corpus, max_samples=24)
    return model


class TestFineTuner:
    def test_learns_small_dataset(self, small_dataset):
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=2, rng=0)
        finetuner = FineTuner(encoder, small_dataset.n_classes, FineTuneConfig(epochs=15, seed=0))
        result = finetuner.fit_and_evaluate(small_dataset)
        assert result.accuracy > 0.6
        assert result.train_accuracy >= result.accuracy - 0.3
        assert len(result.history) == 15
        assert result.fit_seconds > 0

    def test_predict_shapes_and_labels(self, small_dataset):
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=1, rng=0)
        finetuner = FineTuner(encoder, small_dataset.n_classes, FineTuneConfig(epochs=2, seed=0))
        finetuner.fit(small_dataset.train)
        predictions = finetuner.predict(small_dataset.test.X)
        assert predictions.shape == (len(small_dataset.test),)
        assert set(np.unique(predictions)).issubset(set(range(small_dataset.n_classes)))

    def test_frozen_encoder_leaves_weights_unchanged(self, small_dataset):
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=1, rng=0)
        before = {k: v.copy() for k, v in encoder.state_dict().items()}
        config = FineTuneConfig(epochs=3, freeze_encoder=True, seed=0)
        FineTuner(encoder, small_dataset.n_classes, config).fit(small_dataset.train)
        after = encoder.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_unfrozen_encoder_weights_change(self, small_dataset):
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=1, rng=0)
        before = encoder.state_dict()["input_conv.weight"].copy()
        FineTuner(encoder, small_dataset.n_classes, FineTuneConfig(epochs=3, seed=0)).fit(small_dataset.train)
        assert not np.allclose(before, encoder.state_dict()["input_conv.weight"])

    def test_requires_labels(self, small_dataset, rng):
        from repro.data.dataset import DatasetSplit

        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=1, rng=0)
        finetuner = FineTuner(encoder, 2, FineTuneConfig(epochs=1))
        with pytest.raises(ValueError):
            finetuner.fit(DatasetSplit(rng.normal(size=(4, 1, 48))))
        with pytest.raises(ValueError):
            finetuner.score(DatasetSplit(rng.normal(size=(4, 1, 48))))


class TestAimTSModel:
    def test_pretrain_sets_flag_and_history(self, pretrained_model):
        assert pretrained_model.is_pretrained
        assert len(pretrained_model.pretrainer.history.total_loss) >= 1

    def test_fine_tune_beats_chance(self, pretrained_model, small_dataset):
        result = pretrained_model.fine_tune(
            small_dataset, FineTuneConfig(epochs=20, learning_rate=3e-3, seed=0)
        )
        assert result.accuracy > 0.6

    def test_fine_tune_multivariate(self, pretrained_model, small_multivariate_dataset):
        result = pretrained_model.fine_tune(small_multivariate_dataset, FineTuneConfig(epochs=8, seed=0))
        assert 0.0 <= result.accuracy <= 1.0

    def test_fine_tune_does_not_mutate_pretrained_encoder(self, pretrained_model, small_dataset):
        before = pretrained_model.pretrainer.ts_encoder.state_dict()["input_conv.weight"].copy()
        pretrained_model.fine_tune(small_dataset, FineTuneConfig(epochs=2, seed=0))
        after = pretrained_model.pretrainer.ts_encoder.state_dict()["input_conv.weight"]
        np.testing.assert_array_equal(before, after)

    def test_few_shot_ratio_uses_fewer_samples(self, pretrained_model, small_dataset):
        result = pretrained_model.fine_tune(
            small_dataset, FineTuneConfig(epochs=2, seed=0), label_ratio=0.25
        )
        assert 0.0 <= result.accuracy <= 1.0

    def test_encode_returns_repr_dim(self, pretrained_model, small_dataset):
        representations = pretrained_model.encode(small_dataset.test.X[:5])
        assert representations.shape == (5, pretrained_model.config.repr_dim)

    def test_evaluate_archive(self, pretrained_model, small_dataset, small_multivariate_dataset):
        results = pretrained_model.evaluate_archive(
            [small_dataset, small_multivariate_dataset], FineTuneConfig(epochs=3, seed=0)
        )
        assert set(results) == {"unit_ecg", "unit_motion"}
        assert all(0.0 <= v <= 1.0 for v in results.values())

    def test_save_and_load_roundtrip(self, pretrained_model, tmp_path):
        path = pretrained_model.save(tmp_path / "aimts")
        fresh = AimTS(pretrained_model.config)
        assert not fresh.is_pretrained
        fresh.load(path)
        assert fresh.is_pretrained
        original = pretrained_model.pretrainer.ts_encoder.state_dict()
        loaded = fresh.pretrainer.ts_encoder.state_dict()
        for key in original:
            np.testing.assert_array_equal(original[key], loaded[key])

    def test_loaded_model_produces_identical_representations(self, pretrained_model, tmp_path, small_dataset):
        path = pretrained_model.save(tmp_path / "aimts2")
        fresh = AimTS(pretrained_model.config).load(path)
        X = small_dataset.test.X[:4]
        np.testing.assert_allclose(pretrained_model.encode(X), fresh.encode(X), atol=1e-12)
