"""Chaos suite: deterministic fault injection across the whole pipeline.

Every test here is tier-1: faults fire at exact ``(site, invocation_index)``
pairs from a seeded :class:`~repro.utils.faults.FaultPlan`, backoff runs on a
recording fake sleep, and the pass criteria are exact — the PR 9 reliability
contract is that recovery is *bit-identical*, not merely "it didn't crash".

Covered: the fault-plan mechanics themselves, restart-policy determinism,
producer/worker crash + respawn with replayed steps (AimTS and SimCLR loss
curves ``==`` the no-fault run), restart-budget exhaustion degrading to the
inline path with a recorded warning, serving overload shedding / deadline
expiry / dead-worker replacement, corpus read retries + quarantine, atomic
bundle/checkpoint writes surviving an injected crash, and the render cache's
spill readback retry.

The chaos stress workflow (``.github/workflows/chaos.yml``) reruns this file
with randomized fault seeds via ``REPRO_CHAOS_SEED``.
"""

from __future__ import annotations

import os
import threading
import time
import warnings

import numpy as np
import pytest

from repro.api.bundle import load_bundle, save_bundle
from repro.baselines import BaselineConfig, SimCLR
from repro.core.config import AimTSConfig
from repro.core.pretrainer import AimTSPretrainer
from repro.data.corpus import CorpusReadError, CorpusWriter, ShardedCorpus
from repro.data.corpus.__main__ import main as corpus_main
from repro.engine import Checkpointer
from repro.engine.parallel import RestartPolicy
from repro.imaging import LineChartRenderer, RenderCache
from repro.serving import (
    DeadlineExceededError,
    ModelServer,
    ServerOverloadedError,
    run_open_loop,
)
from repro.utils import faults
from repro.utils.faults import FaultPlan, InjectedFault, fault_point
from repro.utils.paths import atomic_write, atomic_write_npz

pytestmark = pytest.mark.chaos

TINY = dict(
    repr_dim=8,
    proj_dim=4,
    hidden_channels=4,
    depth=1,
    panel_size=12,
    series_length=24,
    batch_size=8,
    epochs=2,
    seed=0,
)
BASELINE_TINY = {k: v for k, v in TINY.items() if k != "panel_size"}


def tiny_pool(n=16, seed=0) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, 1, TINY["series_length"]))


def no_sleep(_seconds: float) -> None:
    """Fake clock for restart backoff: chaos tests never sleep for real."""


# --------------------------------------------------------------------------- #
# fault plan mechanics
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_disarmed_fault_point_is_a_noop(self):
        fault_point("producer.step")  # must not raise without an armed plan

    def test_fires_exactly_on_the_planned_invocation(self):
        with faults.armed(FaultPlan([("unit.site", 2)])):
            fault_point("unit.site")  # 0
            fault_point("unit.site")  # 1
            with pytest.raises(InjectedFault) as err:
                fault_point("unit.site")  # 2 — boom
            assert err.value.site == "unit.site" and err.value.index == 2
            fault_point("unit.site")  # 3: past the planned index

    def test_sites_are_counted_independently(self):
        with faults.armed(FaultPlan([("site.a", 0)])):
            fault_point("site.b")  # advances only site.b's counter
            with pytest.raises(InjectedFault):
                fault_point("site.a")

    def test_fuse_makes_a_fault_one_shot(self, tmp_path):
        plan = FaultPlan([("fused.site", 0)], scratch_dir=tmp_path)
        with faults.armed(plan):
            with pytest.raises(InjectedFault):
                fault_point("fused.site")
        # a respawned process replays invocation 0; the fuse holds
        with faults.armed(plan):
            fault_point("fused.site")
        assert (tmp_path / "fused.site@0.fuse").exists()

    def test_env_round_trip_preserves_plan(self, tmp_path):
        plan = FaultPlan([("a.b", 1), ("c.d", 0)], scratch_dir=tmp_path)
        clone = FaultPlan.from_env(plan.to_env())
        assert clone.pairs() == plan.pairs()
        assert clone.scratch_dir == str(tmp_path)

    def test_arm_exports_and_disarm_clears_env(self):
        with faults.armed(FaultPlan([("x.y", 0)])):
            assert os.environ.get(faults.PLAN_ENV_VAR)
        assert faults.PLAN_ENV_VAR not in os.environ

    def test_sampled_plans_are_seed_deterministic(self):
        a = FaultPlan.sample(faults.KNOWN_SITES, seed=7, n_faults=3)
        b = FaultPlan.sample(faults.KNOWN_SITES, seed=7, n_faults=3)
        c = FaultPlan.sample(faults.KNOWN_SITES, seed=8, n_faults=3)
        assert a.pairs() == b.pairs()
        assert len(a.pairs()) == 3
        assert a.pairs() != c.pairs()


class TestRestartPolicy:
    def test_backoff_schedule_is_deterministic_and_exponential(self):
        policy = RestartPolicy(5, backoff_base_s=0.1, backoff_factor=2.0, jitter=0.25, seed=3)
        again = RestartPolicy(5, backoff_base_s=0.1, backoff_factor=2.0, jitter=0.25, seed=3)
        delays = [policy.delay_s(k) for k in range(4)]
        assert delays == [again.delay_s(k) for k in range(4)]
        for k, delay in enumerate(delays):
            base = 0.1 * 2.0**k
            assert base <= delay <= base * 1.25

    def test_pause_uses_the_injected_sleep(self):
        slept = []
        policy = RestartPolicy(2, backoff_base_s=0.5, jitter=0.0, sleep=slept.append)
        assert policy.pause(0) == 0.5
        assert policy.pause(1) == 1.0
        assert slept == [0.5, 1.0]

    def test_zero_budget_is_valid_and_negative_is_not(self):
        assert RestartPolicy(0).max_restarts == 0
        with pytest.raises(ValueError, match="max_restarts"):
            RestartPolicy(-1)


# --------------------------------------------------------------------------- #
# self-healing pre-training: crash, respawn, bit-identical replay
# --------------------------------------------------------------------------- #
def _aimts_run(pool, *, restart=True, **knobs):
    model = AimTSPretrainer(AimTSConfig(**TINY, **knobs))
    if restart:
        model.restart_policy = RestartPolicy(3, sleep=no_sleep)
    history = model.fit(pool)
    curve = (
        tuple(history.total_loss),
        tuple(history.prototype_loss),
        tuple(history.series_image_loss),
    )
    summary = model.trainer.pipeline_summary()
    worker_restarts = model._worker_pool.restart_count if model._worker_pool else 0
    model.shutdown_workers()
    return curve, summary, worker_restarts


class TestSelfHealingPretrain:
    @pytest.fixture(scope="class")
    def pipelined_reference(self):
        curve, _, _ = _aimts_run(tiny_pool(), restart=False, n_producers=1, prefetch_depth=2)
        return curve

    def test_producer_crash_replays_bit_identically(self, pipelined_reference, tmp_path):
        with faults.armed(FaultPlan([("producer.step", 1)], scratch_dir=tmp_path)):
            curve, summary, _ = _aimts_run(tiny_pool(), n_producers=1, prefetch_depth=2)
        assert curve == pipelined_reference
        assert summary["restarts"] >= 1
        assert summary["replayed_steps"] >= 1

    def test_worker_crash_respawns_bit_identically(self, tmp_path):
        reference, _, _ = _aimts_run(tiny_pool(), restart=False, n_workers=2)
        with faults.armed(FaultPlan([("worker.reduce", 1)], scratch_dir=tmp_path)):
            curve, _, worker_restarts = _aimts_run(tiny_pool(), n_workers=2)
        assert curve == reference
        assert worker_restarts >= 1

    def test_budget_exhaustion_degrades_inline_with_warning(
        self, pipelined_reference, tmp_path
    ):
        model = AimTSPretrainer(AimTSConfig(**TINY, n_producers=1, prefetch_depth=2))
        model.restart_policy = RestartPolicy(0, sleep=no_sleep)
        with faults.armed(FaultPlan([("producer.step", 1)], scratch_dir=tmp_path)):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                history = model.fit(tiny_pool())
        curve = (
            tuple(history.total_loss),
            tuple(history.prototype_loss),
            tuple(history.series_image_loss),
        )
        events = list(model.trainer.degradation_events)
        model.shutdown_workers()
        assert curve == pipelined_reference  # the curve survives the downgrade
        messages = [
            str(w.message) for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert any("inline sequential path" in message for message in messages)
        assert events and events[0]["epoch"] == 0

    def test_simclr_producer_crash_replays_bit_identically(self, tmp_path):
        def run(restart, armed_dir=None):
            baseline = SimCLR(BaselineConfig(**BASELINE_TINY, n_producers=1, prefetch_depth=2))
            if restart:
                baseline.restart_policy = RestartPolicy(3, sleep=no_sleep)
            curve = list(baseline.pretrain(tiny_pool()))
            baseline.shutdown_workers()
            return curve

        reference = run(restart=False)
        with faults.armed(FaultPlan([("producer.step", 1)], scratch_dir=tmp_path)):
            crashed = run(restart=True)
        assert crashed == reference


# --------------------------------------------------------------------------- #
# serving: overload shedding, deadlines, dead-worker replacement
# --------------------------------------------------------------------------- #
class EchoEstimator:
    """Deterministic single-replica estimator with an optional worker gate."""

    def __init__(self):
        self.gate: threading.Event | None = None
        self.batch_sizes: list[int] = []

    def _maybe_block(self) -> None:
        if self.gate is not None:
            assert self.gate.wait(timeout=10.0), "test gate never opened"

    def predict_proba(self, X) -> np.ndarray:
        self._maybe_block()
        X = np.asarray(X)
        self.batch_sizes.append(X.shape[0])
        level = 1.0 / (1.0 + np.exp(-X.sum(axis=(1, 2))))
        return np.stack([level, 1.0 - level], axis=1)

    def encode(self, X) -> np.ndarray:
        self._maybe_block()
        X = np.asarray(X)
        self.batch_sizes.append(X.shape[0])
        return X.sum(axis=2)


def _wait_until(predicate, timeout_s=5.0) -> None:
    deadline = time.perf_counter() + timeout_s
    while not predicate():
        assert time.perf_counter() < deadline, "condition never became true"
        time.sleep(0.001)


class TestServingReliability:
    def test_overload_sheds_and_accepted_requests_stay_bitwise_correct(self):
        estimator = EchoEstimator()
        estimator.gate = threading.Event()
        samples = [np.full((1, 8), fill) for fill in (0.1, 0.2, 0.3, 0.4, 0.5)]
        with ModelServer(
            estimator, max_batch=1, max_wait_ms=50.0, n_workers=1, max_pending=3
        ) as server:
            first = server.submit(samples[0], op="predict_proba")
            # the lone worker takes the first batch and blocks inside the gate
            _wait_until(lambda: server._batcher.pending_count() == 0)
            queued = [server.submit(s, op="predict_proba") for s in samples[1:4]]
            with pytest.raises(ServerOverloadedError) as err:
                server.submit(samples[4], op="predict_proba")
            assert err.value.pending >= err.value.max_pending == 3
            estimator.gate.set()
            results = [f.result(timeout=10.0) for f in [first, *queued]]
        reference = EchoEstimator()
        for sample, row in zip(samples[:4], results):
            np.testing.assert_array_equal(
                row, reference.predict_proba(sample[None])[0]
            )
        assert server.stats()["shed_requests"] == 1

    def test_expired_deadline_never_occupies_a_batch_slot(self):
        estimator = EchoEstimator()
        estimator.gate = threading.Event()
        with ModelServer(
            estimator, max_batch=1, max_wait_ms=50.0, n_workers=1
        ) as server:
            live = server.submit(np.ones((1, 8)), op="predict_proba")
            _wait_until(lambda: server._batcher.pending_count() == 0)
            doomed = server.submit(
                np.full((1, 8), 2.0), op="predict_proba", deadline_ms=0.0
            )
            estimator.gate.set()
            live.result(timeout=10.0)
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=10.0)
            stats = server.stats()
        assert stats["deadline_expired"] == 1
        assert estimator.batch_sizes == [1]  # the doomed sample never ran

    def test_dead_worker_thread_is_replaced_on_submit(self, tmp_path):
        estimator = EchoEstimator()
        with faults.armed(FaultPlan([("server.worker", 0)], scratch_dir=tmp_path)):
            with ModelServer(
                estimator, max_batch=1, max_wait_ms=5.0, n_workers=1
            ) as server:
                _wait_until(lambda: not server._threads[0].is_alive())
                future = server.submit(np.ones((1, 8)), op="predict_proba")
                row = future.result(timeout=10.0)
                stats = server.stats()
        np.testing.assert_array_equal(row, EchoEstimator().predict_proba(np.ones((1, 1, 8)))[0])
        assert stats["worker_deaths"] == 1
        assert stats["worker_restarts"] == 1

    def test_open_loop_counts_shed_and_retries_deterministically(self):
        estimator = EchoEstimator()
        estimator.gate = threading.Event()
        samples = [np.ones((1, 8))]
        with ModelServer(
            estimator, max_batch=1, max_wait_ms=50.0, n_workers=1, max_pending=1
        ) as server:
            stuck = server.submit(samples[0], op="predict")
            _wait_until(lambda: server._batcher.pending_count() == 0)
            filler = server.submit(samples[0], op="predict")  # queue now full
            report = run_open_loop(
                server,
                samples,
                rate_rps=100.0,
                duration_s=0.05,
                op="predict",
                n_submitters=1,
                max_retries=2,
                retry_backoff_s=0.0005,
            )
            estimator.gate.set()
            stuck.result(timeout=10.0)
            filler.result(timeout=10.0)
        assert report.n_shed == report.n_requests  # queue was wedged shut
        assert report.n_retries == 2 * report.n_requests
        assert report.n_completed == 0 and report.n_errors == 0
        record = report.as_record()
        for key in ("n_shed", "n_retries", "n_deadline_expired", "goodput_rps"):
            assert key in record

    def test_open_loop_goodput_on_a_healthy_server(self):
        estimator = EchoEstimator()
        with ModelServer(estimator, max_batch=4, max_wait_ms=1.0, n_workers=1) as server:
            report = run_open_loop(
                server,
                [np.ones((1, 8))],
                rate_rps=200.0,
                duration_s=0.1,
                op="predict",
                n_submitters=1,
            )
        assert report.n_completed == report.n_requests
        assert report.n_shed == report.n_errors == 0
        assert report.goodput_rps > 0.0


# --------------------------------------------------------------------------- #
# corpus: read retries + quarantine
# --------------------------------------------------------------------------- #
def _write_corpus(directory, n=12, shard_size=4, labeled=True):
    rng = np.random.default_rng(5)
    X = rng.normal(size=(n, 1, 16))
    y = rng.integers(0, 3, size=n) if labeled else None
    with CorpusWriter(
        directory, X.shape[1:], dtype=X.dtype, labeled=labeled, shard_size=shard_size
    ) as writer:
        writer.append(X, y)
    return X


class TestCorpusReliability:
    def test_transient_read_fault_is_retried(self, tmp_path):
        X = _write_corpus(tmp_path / "c")
        corpus = ShardedCorpus(tmp_path / "c", read_retries=1)
        with faults.armed(FaultPlan([("corpus.read_shard", 0)])):
            out = corpus.materialize()
        np.testing.assert_array_equal(out, X)
        assert corpus.read_retry_count == 1
        assert not corpus.quarantined

    def test_exhausted_retries_raise_corpus_read_error(self, tmp_path):
        _write_corpus(tmp_path / "c")
        corpus = ShardedCorpus(tmp_path / "c", read_retries=0)
        with faults.armed(FaultPlan([("corpus.read_shard", 0)])):
            with pytest.raises(CorpusReadError, match="unreadable after 1 attempt"):
                corpus.materialize()

    def test_skip_corrupt_iterates_around_a_quarantined_shard(self, tmp_path):
        X = _write_corpus(tmp_path / "c", n=12, shard_size=4)
        (tmp_path / "c" / "shard-00001.npy").write_bytes(b"not an npy file")
        corpus = ShardedCorpus(tmp_path / "c", read_retries=0, skip_corrupt=True)
        seen = np.sort(
            np.concatenate(
                list(corpus.iter_index_batches(4, shuffle=False)) or [np.empty(0, np.int64)]
            )
        )
        expected = np.concatenate([np.arange(0, 4), np.arange(8, 12)])
        np.testing.assert_array_equal(seen, expected)
        assert list(corpus.quarantined) == [1]
        assert corpus.dropped_samples == 4
        np.testing.assert_array_equal(corpus.gather(np.arange(0, 4)), X[:4])
        with pytest.raises(CorpusReadError, match="quarantined"):
            corpus.gather(np.array([5]))

    def test_cli_verify_quarantine_moves_shards_and_updates_manifest(
        self, tmp_path, capsys
    ):
        _write_corpus(tmp_path / "c", n=12, shard_size=4)
        victim = tmp_path / "c" / "shard-00001.npy"
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF  # valid npy, wrong checksum
        victim.write_bytes(raw)

        assert corpus_main(["verify", str(tmp_path / "c")]) == 1
        assert corpus_main(["verify", str(tmp_path / "c"), "--quarantine"]) == 1
        assert (tmp_path / "c" / "quarantine" / "shard-00001.npy").exists()
        assert (tmp_path / "c" / "quarantine" / "labels-00001.npy").exists()
        assert not victim.exists()

        healed = ShardedCorpus(tmp_path / "c")
        assert len(healed) == 8
        assert healed.n_shards == 2
        assert corpus_main(["verify", str(tmp_path / "c")]) == 0
        capsys.readouterr()
        assert corpus_main(["inspect", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out and "checksum mismatch" in out


# --------------------------------------------------------------------------- #
# durable state: atomic writes + checkpoint retention + spill retry
# --------------------------------------------------------------------------- #
class TestAtomicWrites:
    def test_injected_crash_during_save_keeps_the_old_bundle(self, tmp_path):
        path = tmp_path / "model.npz"
        arrays = {"w": np.arange(4.0)}
        save_bundle(path, arrays, {"estimator": "unit"})
        with faults.armed(FaultPlan([("checkpoint.write", 0)])):
            with pytest.raises(InjectedFault):
                save_bundle(path, {"w": np.arange(4.0) + 1.0}, {"estimator": "unit"})
        loaded, manifest = load_bundle(path)
        np.testing.assert_array_equal(loaded["w"], arrays["w"])  # v1 survived
        assert not list(tmp_path.glob("*.tmp"))  # the temp file was cleaned up

    def test_atomic_write_text_and_npz_round_trip(self, tmp_path):
        text_path = atomic_write(tmp_path / "note.txt", lambda h: h.write("ok"), mode="w")
        assert open(text_path, encoding="utf-8").read() == "ok"
        npz_path = atomic_write_npz(tmp_path / "blob", {"a": np.ones(3)})
        assert npz_path.endswith(".npz")
        with np.load(npz_path) as archive:
            np.testing.assert_array_equal(archive["a"], np.ones(3))

    def test_checkpointer_keep_last_prunes_old_epochs(self, tmp_path):
        class StubState:
            epoch = 0

        class StubTrainer:
            state = StubState()

            def save_checkpoint(self, path):
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(f"epoch {self.state.epoch}")
                return str(path)

        trainer = StubTrainer()
        checkpointer = Checkpointer(tmp_path / "ckpt.npz", keep_last=2)
        for epoch in (1, 2, 3, 4):
            trainer.state.epoch = epoch
            checkpointer.on_epoch_end(trainer, {})
        kept = sorted(p.name for p in tmp_path.glob("ckpt.epoch*.npz"))
        assert kept == ["ckpt.epoch0003.npz", "ckpt.epoch0004.npz"]
        assert checkpointer.last_path.endswith("ckpt.epoch0004.npz")

    def test_legacy_checkpointer_overwrites_in_place(self, tmp_path):
        class StubState:
            epoch = 0

        class StubTrainer:
            state = StubState()

            def save_checkpoint(self, path):
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(f"epoch {self.state.epoch}")
                return str(path)

        trainer = StubTrainer()
        checkpointer = Checkpointer(tmp_path / "ckpt.npz")
        for epoch in (1, 2):
            trainer.state.epoch = epoch
            checkpointer.on_epoch_end(trainer, {})
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt.npz"]


class TestSpillReadbackRetry:
    def test_transient_readback_fault_is_retried_once(self, tmp_path, rng):
        renderer = LineChartRenderer(panel_size=16)
        pool = rng.normal(size=(8, 1, 32))
        cache = RenderCache(
            renderer,
            max_bytes=2 * renderer.image_nbytes(1),
            spill_dir=tmp_path / "spill",
        )
        cache.get_batch(pool, np.arange(len(pool)))  # fills RAM, spills the rest
        victim = sorted(cache._spill_meta)[0]
        with faults.armed(FaultPlan([("spill.readback", 0)])):
            out = cache.get_batch(pool[[victim]], np.array([victim]))
        np.testing.assert_array_equal(out[0], renderer.render_batch(pool[[victim]])[0])
        stats = cache.stats()
        assert stats["spill_retries"] == 1
        assert stats["readback_failures"] == 0
        assert victim in cache._spill_meta  # the entry survived the hiccup
