"""Batched-vs-reference augmentation equivalence (PR 5).

The vectorized ``_transform_batch`` kernels must be **bit-identical** to the
per-sample ``_transform_sample`` loops under the same RNG stream — outputs
*and* final generator state — because the engine's golden loss curves assert
``==`` on floats.  These tests parametrize over every op registered in
:data:`repro.api.registry.AUGMENTATIONS` (the bank vocabulary), plus the
shape/NaN edge cases of the gather-based ops and the ``interp_batch`` kernel
that underpins them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.registry import AUGMENTATIONS
from repro.augmentations import (
    AugmentationBank,
    Compose,
    Jitter,
    Scaling,
    Slicing,
    TimeWarp,
    WindowWarp,
    default_bank,
    interp_batch,
)
from repro.augmentations.kernels import interp_uniform_batch

REGISTERED = sorted(AUGMENTATIONS.names())


def _pair(name_or_cls, seed=123, **kwargs):
    """Two identically seeded instances: reference-path and batched-path."""
    if isinstance(name_or_cls, str):
        reference = AUGMENTATIONS.create(name_or_cls, seed=seed, **kwargs)
        batched = AUGMENTATIONS.create(name_or_cls, seed=seed, **kwargs)
    else:
        reference = name_or_cls(seed=seed, **kwargs)
        batched = name_or_cls(seed=seed, **kwargs)
    reference.batched = False
    batched.batched = True
    return reference, batched


def _assert_equivalent(reference, batched, X, calls=3):
    """Outputs bit-identical and RNG streams aligned over repeated calls."""
    for call in range(calls):
        out_reference = reference(X)
        out_batched = batched(X)
        assert out_batched.dtype == X.dtype
        np.testing.assert_array_equal(
            out_reference,
            out_batched,
            err_msg=f"{type(reference).__name__} diverged on call {call}",
        )
        assert (
            reference._rng.bit_generator.state == batched._rng.bit_generator.state
        ), f"{type(reference).__name__} consumed a different stream on call {call}"


@pytest.mark.parametrize("name", REGISTERED)
class TestRegisteredOpEquivalence:
    def test_batch_bit_identical_float64(self, name, rng):
        _assert_equivalent(*_pair(name), rng.normal(size=(7, 3, 48)))

    def test_batch_bit_identical_float32(self, name, rng):
        X = rng.normal(size=(6, 2, 33)).astype(np.float32)
        _assert_equivalent(*_pair(name), X)

    def test_batch_bit_identical_single_sample_batch(self, name, rng):
        _assert_equivalent(*_pair(name), rng.normal(size=(1, 2, 40)))

    def test_batch_bit_identical_short_series(self, name, rng):
        # T=7 exercises the window == 2 floors of Slicing / WindowWarp
        _assert_equivalent(*_pair(name), rng.normal(size=(5, 1, 7)))

    def test_batch_bit_identical_with_nans(self, name, rng):
        X = rng.normal(size=(6, 2, 31))
        X[0, 0, 3] = np.nan
        X[2, 1, :5] = np.nan
        X[5, :, -1] = np.nan
        _assert_equivalent(*_pair(name), X)

    def test_batched_flag_defaults_on(self, name):
        assert AUGMENTATIONS.create(name, seed=0).batched is True


class TestEdgeCases:
    def test_slicing_degenerate_crop_keeps_stream(self, rng):
        # crop_ratio=1.0 -> window == T: both paths copy, but must still
        # consume one integers draw per sample
        X = rng.normal(size=(4, 2, 20))
        reference, batched = _pair(Slicing, crop_ratio=1.0)
        _assert_equivalent(reference, batched, X)
        np.testing.assert_array_equal(batched(X), X)

    def test_window_warp_identity_scale_group(self, rng):
        # a scale of exactly 1.0 makes the stitched length equal T (the
        # resample short-circuits); mixed groups must still land in order
        X = rng.normal(size=(8, 2, 30))
        _assert_equivalent(*_pair(WindowWarp, scales=(0.5, 1.0, 2.0)), X)

    def test_window_warp_full_window(self, rng):
        X = rng.normal(size=(5, 1, 24))
        _assert_equivalent(*_pair(WindowWarp, window_ratio=1.0), X)

    def test_time_warp_many_knots(self, rng):
        X = rng.normal(size=(4, 2, 50))
        _assert_equivalent(*_pair(TimeWarp, n_knots=12, strength=0.5), X)

    def test_compose_runs_reference_loop(self, rng):
        # Compose interleaves the children's draws per sample, so its batched
        # path is defined as the reference loop: identical streams either way
        X = rng.normal(size=(5, 2, 32))
        make = lambda: Compose(
            [Jitter(sigma=0.05), Scaling(sigma=0.1), TimeWarp()], seed=7
        )
        reference, batched = make(), make()
        reference.batched = False
        np.testing.assert_array_equal(reference(X), batched(X))

    def test_integer_input_promoted_to_default_dtype(self):
        from repro.nn.tensor import default_dtype

        X = np.arange(2 * 24, dtype=np.int64).reshape(1, 2, 24)
        assert Jitter(seed=0)(X).dtype == np.float64
        with default_dtype(np.float32):
            assert Jitter(seed=0)(X).dtype == np.float32

    def test_float32_not_upcast(self, rng):
        X = rng.normal(size=(3, 2, 16)).astype(np.float32)
        for name in REGISTERED:
            out = AUGMENTATIONS.create(name, seed=0)(X)
            assert out.dtype == np.float32, name


class TestBankEquivalence:
    def test_two_views_bit_identical(self, rng):
        X = rng.normal(size=(6, 1, 40))
        reference = default_bank(seed=5).set_batched(False)
        batched = default_bank(seed=5).set_batched(True)
        for _ in range(2):
            for side_a, side_b in zip(reference.two_views(X), batched.two_views(X)):
                np.testing.assert_array_equal(side_a, side_b)

    def test_augment_batch_preserves_dtype(self, rng):
        X = rng.normal(size=(4, 1, 32)).astype(np.float32)
        views = default_bank(seed=0).augment_batch(X)
        assert views.dtype == np.float32
        assert views.shape == (5, 4, 1, 32)

    def test_set_batched_returns_bank(self):
        bank = default_bank(seed=0)
        assert isinstance(bank.set_batched(False), AugmentationBank)
        assert all(not augmentation.batched for augmentation in bank)


class TestInterpKernel:
    """``interp_batch`` fuzzed for bit-identity against ``np.interp``."""

    @pytest.mark.parametrize("with_nans", [False, True])
    def test_matches_np_interp(self, rng, with_nans):
        for _ in range(60):
            n_in = int(rng.integers(2, 30))
            n_out = int(rng.integers(2, 50))
            xp = np.sort(rng.normal(size=n_in))
            if len(np.unique(xp)) != n_in:
                continue
            fp = rng.normal(size=(3, n_in))
            if with_nans:
                fp[0, rng.integers(0, n_in)] = np.nan
            x = rng.normal(size=n_out) * 1.5
            # force exact hits, including both endpoints
            x[0], x[-1] = xp[0], xp[-1]
            if n_out > 2:
                x[1] = xp[int(rng.integers(0, n_in))]
            got = interp_batch(x, xp, fp)
            for row in range(fp.shape[0]):
                np.testing.assert_array_equal(got[row], np.interp(x, xp, fp[row]))

    def test_uniform_plan_matches_generic(self, rng):
        for n_in, n_out in [(2, 9), (24, 96), (29, 10), (96, 96)]:
            fp = rng.normal(size=(4, 2, n_in))
            fp[0, 0, 0] = np.nan
            expected = interp_batch(
                np.linspace(0.0, 1.0, n_out), np.linspace(0.0, 1.0, n_in), fp
            )
            np.testing.assert_array_equal(interp_uniform_batch(fp, n_out), expected)

    def test_rejects_scalar_xp(self):
        with pytest.raises(ValueError):
            interp_batch([0.5], [1.0], [[2.0]])

    def test_broadcasts_query_over_rows(self, rng):
        xp = np.linspace(0.0, 1.0, 8)
        fp = rng.normal(size=(5, 3, 8))
        x = rng.uniform(0, 1, size=(5, 1, 11))  # per-sample grids, shared across M
        got = interp_batch(x, xp, fp)
        assert got.shape == (5, 3, 11)
        for b in range(5):
            for m in range(3):
                np.testing.assert_array_equal(got[b, m], np.interp(x[b, 0], xp, fp[b, m]))
