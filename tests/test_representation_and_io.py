"""Tests for the representation-quality metrics and the dataset import/export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import dataset_from_arrays, load_dataset_file, save_dataset
from repro.evaluation import (
    alignment,
    nearest_centroid_accuracy,
    representation_report,
    silhouette_score,
    uniformity,
)


def _unit(rng, n, d):
    x = rng.normal(size=(n, d))
    return x / np.linalg.norm(x, axis=1, keepdims=True)


class TestAlignmentUniformity:
    def test_alignment_zero_for_identical_pairs(self, rng):
        x = _unit(rng, 10, 8)
        assert alignment(x, x) == pytest.approx(0.0, abs=1e-12)

    def test_alignment_positive_for_random_pairs(self, rng):
        assert alignment(_unit(rng, 10, 8), _unit(rng, 10, 8)) > 0.5

    def test_alignment_improves_with_smaller_perturbation(self, rng):
        x = _unit(rng, 20, 8)
        small = alignment(x, x + 0.01 * rng.normal(size=x.shape))
        large = alignment(x, x + 0.5 * rng.normal(size=x.shape))
        assert small < large

    def test_alignment_shape_validation(self, rng):
        with pytest.raises(ValueError):
            alignment(_unit(rng, 5, 4), _unit(rng, 6, 4))

    def test_uniformity_prefers_spread_out_representations(self, rng):
        spread = _unit(rng, 60, 16)
        collapsed = np.tile(spread[:1], (60, 1)) + 1e-3 * rng.normal(size=(60, 16))
        assert uniformity(spread) < uniformity(collapsed)

    def test_uniformity_needs_two_points(self, rng):
        with pytest.raises(ValueError):
            uniformity(_unit(rng, 1, 4))

    def test_report_keys(self, rng):
        x = _unit(rng, 12, 6)
        labels = np.array([0, 1] * 6)
        report = representation_report(x, labels, positives=(x, x))
        assert set(report) == {"uniformity", "alignment", "silhouette"}


class TestSilhouetteAndCentroid:
    def test_silhouette_high_for_separated_clusters(self, rng):
        a = rng.normal(loc=0.0, scale=0.1, size=(20, 4))
        b = rng.normal(loc=5.0, scale=0.1, size=(20, 4))
        score = silhouette_score(np.concatenate([a, b]), np.array([0] * 20 + [1] * 20))
        assert score > 0.8

    def test_silhouette_near_zero_for_mixed_clusters(self, rng):
        x = rng.normal(size=(40, 4))
        score = silhouette_score(x, rng.integers(0, 2, size=40))
        assert -0.3 < score < 0.3

    def test_silhouette_requires_two_classes(self, rng):
        with pytest.raises(ValueError):
            silhouette_score(rng.normal(size=(10, 3)), np.zeros(10))

    def test_nearest_centroid_accuracy_perfect_for_separated_data(self, rng):
        train = np.concatenate([rng.normal(0, 0.1, (15, 3)), rng.normal(4, 0.1, (15, 3))])
        train_y = np.array([0] * 15 + [1] * 15)
        test = np.concatenate([rng.normal(0, 0.1, (5, 3)), rng.normal(4, 0.1, (5, 3))])
        test_y = np.array([0] * 5 + [1] * 5)
        assert nearest_centroid_accuracy(train, train_y, test, test_y) == pytest.approx(1.0)

    def test_pretrained_encoder_representation_quality(self, small_dataset):
        """The metrics should rank a trained encoder above a random projection."""
        from repro.core import FineTuneConfig, FineTuner
        from repro.encoders import TSEncoder

        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=2, rng=0)
        finetuner = FineTuner(encoder, small_dataset.n_classes, FineTuneConfig(epochs=15, seed=0))
        finetuner.fit(small_dataset.train)
        from repro.nn.tensor import no_grad

        with no_grad():
            trained = encoder(small_dataset.test.X).data
        rng = np.random.default_rng(0)
        random_proj = small_dataset.test.X.reshape(len(small_dataset.test), -1) @ rng.normal(
            size=(small_dataset.test.X[0].size, 16)
        )
        trained_silhouette = silhouette_score(trained, small_dataset.test.y)
        random_silhouette = silhouette_score(random_proj, small_dataset.test.y)
        assert trained_silhouette > random_silhouette - 0.05


class TestDatasetIO:
    def test_from_arrays_stratified_split(self, rng):
        X = rng.normal(size=(40, 2, 30))
        y = np.array([0, 1] * 20)
        dataset = dataset_from_arrays("user_ds", X, y, test_size=0.25, seed=0)
        assert dataset.n_classes == 2
        assert len(dataset.train) + len(dataset.test) == 40
        assert set(np.unique(dataset.test.y)) == {0, 1}

    def test_from_arrays_promotes_2d_input(self, rng):
        dataset = dataset_from_arrays("uni", rng.normal(size=(20, 30)), np.arange(20) % 2, seed=0)
        assert dataset.n_variables == 1

    def test_from_arrays_relabels_arbitrary_labels(self, rng):
        X = rng.normal(size=(12, 1, 10))
        y = np.array(["cat", "dog"] * 6)
        dataset = dataset_from_arrays("labels", X, y, seed=0)
        assert dataset.n_classes == 2
        assert dataset.metadata["original_labels"] == ["cat", "dog"]

    def test_from_arrays_explicit_test_split(self, rng):
        X = rng.normal(size=(10, 1, 10))
        y = np.arange(10) % 2
        dataset = dataset_from_arrays("explicit", X, y, X_test=X[:4], y_test=y[:4])
        assert len(dataset.test) == 4
        with pytest.raises(ValueError):
            dataset_from_arrays("broken", X, y, X_test=X[:4])

    def test_from_arrays_invalid_test_size(self, rng):
        X = rng.normal(size=(10, 1, 10))
        y = np.arange(10) % 2
        with pytest.raises(ValueError):
            dataset_from_arrays("bad", X, y, test_size=0.0)
        with pytest.raises(ValueError):
            dataset_from_arrays("bad", X, y, test_size=1.5)

    def test_save_and_load_roundtrip(self, tmp_path, small_dataset):
        path = save_dataset(small_dataset, tmp_path / "ds")
        loaded = load_dataset_file(path)
        assert loaded.name == small_dataset.name
        assert loaded.n_classes == small_dataset.n_classes
        np.testing.assert_array_equal(loaded.train.X, small_dataset.train.X)
        np.testing.assert_array_equal(loaded.test.y, small_dataset.test.y)

    def test_save_appends_suffix_and_load_accepts_the_save_path(self, tmp_path, small_dataset):
        # the same contract as repro.api.bundle: save("ds") writes "ds.npz"
        # and load works with either string
        path = save_dataset(small_dataset, tmp_path / "ds")
        assert path == str(tmp_path / "ds.npz")
        for load_path in (tmp_path / "ds", tmp_path / "ds.npz"):
            assert load_dataset_file(load_path).name == small_dataset.name

    def test_uppercase_suffix_is_not_double_appended(self, tmp_path, small_dataset):
        path = save_dataset(small_dataset, tmp_path / "ds.NPZ")
        assert path == str(tmp_path / "ds.NPZ")
        assert not (tmp_path / "ds.NPZ.npz").exists()
        assert load_dataset_file(path).name == small_dataset.name

    def test_user_dataset_flows_through_finetuning(self, rng):
        from repro.core import FineTuneConfig, FineTuner
        from repro.encoders import TSEncoder

        t = np.linspace(0, 1, 40)
        class0 = np.sin(2 * np.pi * 2 * t) + 0.05 * rng.normal(size=(20, 40))
        class1 = np.sin(2 * np.pi * 6 * t) + 0.05 * rng.normal(size=(20, 40))
        X = np.concatenate([class0, class1])
        y = np.array([0] * 20 + [1] * 20)
        dataset = dataset_from_arrays("user_freq", X, y, test_size=0.3, seed=0)
        encoder = TSEncoder(hidden_channels=8, repr_dim=16, depth=2, rng=0)
        result = FineTuner(encoder, dataset.n_classes, FineTuneConfig(epochs=15, seed=0)).fit_and_evaluate(dataset)
        assert result.accuracy > 0.7
