"""Integration tests for the three evaluation protocols."""

from __future__ import annotations

import pytest

from repro.baselines import BaselineConfig, LinearClassifier, MomentLike, TS2Vec
from repro.core import AimTS, AimTSConfig, FineTuneConfig
from repro.data import load_pretraining_corpus
from repro.data.archives import make_dataset
from repro.evaluation import (
    run_case_by_case_comparison,
    run_fewshot_comparison,
    run_multisource_comparison,
)


@pytest.fixture(scope="module")
def protocol_setup():
    """Shared pre-trained AimTS model, baselines and two small datasets."""
    config = AimTSConfig(
        repr_dim=12,
        proj_dim=6,
        hidden_channels=6,
        depth=1,
        panel_size=16,
        series_length=32,
        batch_size=8,
        epochs=1,
        seed=0,
    )
    model = AimTS(config)
    corpus = load_pretraining_corpus("monash", n_datasets=2, seed=0)
    model.pretrain(corpus, max_samples=16)

    datasets = [
        make_dataset("proto_ecg", "ecg", n_classes=2, n_train=12, n_test=16, length=32, seed=0),
        make_dataset("proto_dev", "device", n_classes=2, n_train=12, n_test=16, length=32, seed=1),
    ]
    finetune = FineTuneConfig(epochs=4, batch_size=8, classifier_hidden_dim=16, seed=0)
    baseline_config = BaselineConfig(
        repr_dim=12, proj_dim=6, hidden_channels=6, depth=1, series_length=32, batch_size=8, epochs=1, seed=0
    )
    return model, datasets, finetune, baseline_config


class TestCaseByCaseProtocol:
    def test_accuracies_for_all_methods_and_datasets(self, protocol_setup):
        model, datasets, finetune, baseline_config = protocol_setup
        baselines = {"TS2Vec": TS2Vec(baseline_config), "Linear": LinearClassifier()}
        comparison = run_case_by_case_comparison(
            model, baselines, datasets, finetune_config=finetune, baseline_pretrain_epochs=1
        )
        assert set(comparison.accuracies) == {"AimTS", "TS2Vec", "Linear"}
        for per_dataset in comparison.accuracies.values():
            assert set(per_dataset) == {"proto_ecg", "proto_dev"}
            assert all(0.0 <= v <= 1.0 for v in per_dataset.values())
        assert set(comparison.summary["AimTS"]) == {"avg_acc", "avg_rank", "num_top1"}


class TestMultiSourceProtocol:
    def test_pretrained_baseline_comparison(self, protocol_setup):
        model, datasets, finetune, baseline_config = protocol_setup
        moment = MomentLike(baseline_config)
        moment.pretrain_multi_source(load_pretraining_corpus("monash", n_datasets=2, seed=0), max_samples=12, epochs=1)
        comparison = run_multisource_comparison(model, {"MOMENT": moment}, datasets, finetune_config=finetune)
        assert set(comparison.accuracies) == {"AimTS", "MOMENT"}

    def test_fewshot_protocol_returns_one_result_per_ratio(self, protocol_setup):
        model, datasets, finetune, baseline_config = protocol_setup
        moment = MomentLike(baseline_config)
        moment.pretrain_multi_source(load_pretraining_corpus("monash", n_datasets=2, seed=0), max_samples=12, epochs=1)
        results = run_fewshot_comparison(
            model, {"MOMENT": moment}, datasets, ratios=(0.25, 0.5), finetune_config=finetune
        )
        assert set(results) == {0.25, 0.5}
        for comparison in results.values():
            assert "AimTS" in comparison.accuracies
