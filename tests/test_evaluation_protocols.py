"""Integration tests for the three evaluation protocols."""

from __future__ import annotations

import pytest

from repro.baselines import BaselineConfig, LinearClassifier, MomentLike, TS2Vec
from repro.core import AimTS, AimTSConfig, FineTuneConfig
from repro.data import load_pretraining_corpus
from repro.data.archives import make_dataset
from repro.evaluation import (
    run_case_by_case_comparison,
    run_fewshot_comparison,
    run_multisource_comparison,
    run_protocol,
)


@pytest.fixture(scope="module")
def protocol_setup():
    """Shared pre-trained AimTS model, baselines and two small datasets."""
    config = AimTSConfig(
        repr_dim=12,
        proj_dim=6,
        hidden_channels=6,
        depth=1,
        panel_size=16,
        series_length=32,
        batch_size=8,
        epochs=1,
        seed=0,
    )
    model = AimTS(config)
    corpus = load_pretraining_corpus("monash", n_datasets=2, seed=0)
    model.pretrain(corpus, max_samples=16)

    datasets = [
        make_dataset("proto_ecg", "ecg", n_classes=2, n_train=12, n_test=16, length=32, seed=0),
        make_dataset("proto_dev", "device", n_classes=2, n_train=12, n_test=16, length=32, seed=1),
    ]
    finetune = FineTuneConfig(epochs=4, batch_size=8, classifier_hidden_dim=16, seed=0)
    baseline_config = BaselineConfig(
        repr_dim=12, proj_dim=6, hidden_channels=6, depth=1, series_length=32, batch_size=8, epochs=1, seed=0
    )
    return model, datasets, finetune, baseline_config


class TestCaseByCaseProtocol:
    def test_accuracies_for_all_methods_and_datasets(self, protocol_setup):
        model, datasets, finetune, baseline_config = protocol_setup
        baselines = {"TS2Vec": TS2Vec(baseline_config), "Linear": LinearClassifier()}
        comparison = run_case_by_case_comparison(
            model, baselines, datasets, finetune_config=finetune, baseline_pretrain_epochs=1
        )
        assert set(comparison.accuracies) == {"AimTS", "TS2Vec", "Linear"}
        for per_dataset in comparison.accuracies.values():
            assert set(per_dataset) == {"proto_ecg", "proto_dev"}
            assert all(0.0 <= v <= 1.0 for v in per_dataset.values())
        assert set(comparison.summary["AimTS"]) == {"avg_acc", "avg_rank", "num_top1"}


class TestMultiSourceProtocol:
    def test_pretrained_baseline_comparison(self, protocol_setup):
        model, datasets, finetune, baseline_config = protocol_setup
        moment = MomentLike(baseline_config)
        moment.pretrain_multi_source(load_pretraining_corpus("monash", n_datasets=2, seed=0), max_samples=12, epochs=1)
        comparison = run_multisource_comparison(model, {"MOMENT": moment}, datasets, finetune_config=finetune)
        assert set(comparison.accuracies) == {"AimTS", "MOMENT"}

    def test_fewshot_protocol_returns_one_result_per_ratio(self, protocol_setup):
        model, datasets, finetune, baseline_config = protocol_setup
        moment = MomentLike(baseline_config)
        moment.pretrain_multi_source(load_pretraining_corpus("monash", n_datasets=2, seed=0), max_samples=12, epochs=1)
        results = run_fewshot_comparison(
            model, {"MOMENT": moment}, datasets, ratios=(0.25, 0.5), finetune_config=finetune
        )
        assert set(results) == {0.25, 0.5}
        for comparison in results.values():
            assert "AimTS" in comparison.accuracies


class _FakePretrainedAimTS:
    """Stand-in for a pre-trained AimTS in wrapper-semantics tests."""

    name = "AimTS"
    supports_pretraining = True
    is_pretrained = True

    def fine_tune(self, dataset, config=None, *, label_ratio=None):
        from repro.core.finetuner import FineTuneResult

        return FineTuneResult(dataset.name, 1.0, 1.0, 1, 0.0)


class TestRunProtocol:
    """The generic registry-driven protocol runner."""

    def test_estimators_resolvable_by_name_and_spec(self, protocol_setup):
        _, datasets, finetune, _ = protocol_setup
        comparison = run_protocol(
            {"Linear": "linear", "Rocket": {"name": "rocket", "n_kernels": 20, "seed": 0}},
            datasets,
            finetune_config=finetune,
        )
        assert set(comparison.accuracies) == {"Linear", "Rocket"}
        for per_dataset in comparison.accuracies.values():
            assert set(per_dataset) == {d.name for d in datasets}
            assert all(0.0 <= v <= 1.0 for v in per_dataset.values())

    def test_sequence_of_instances_keyed_by_display_name(self, protocol_setup):
        model, datasets, finetune, baseline_config = protocol_setup
        # the un-pretrained TS2Vec in a multi-source run without a corpus is
        # evaluated from random initialisation — run_protocol says so loudly
        with pytest.warns(UserWarning, match="not pre-trained"):
            comparison = run_protocol(
                [model, TS2Vec(baseline_config)],
                datasets,
                protocol="multi_source",
                finetune_config=finetune,
            )
        assert set(comparison.accuracies) == {"AimTS", "TS2Vec"}

    def test_case_by_case_pretrains_fresh_estimators_per_dataset(self, protocol_setup):
        _, datasets, finetune, baseline_config = protocol_setup
        baseline = TS2Vec(baseline_config)
        assert not baseline.is_pretrained
        run_protocol(baseline, datasets, protocol="case_by_case", finetune_config=finetune)
        assert baseline.is_pretrained

    def test_multi_source_pretrains_on_shared_corpus(self, protocol_setup):
        _, datasets, finetune, baseline_config = protocol_setup
        baseline = MomentLike(baseline_config)
        comparison = run_protocol(
            baseline,
            datasets,
            protocol="multi_source",
            pretrain_corpus="monash",
            pretrain_kwargs={"n_datasets": 2, "seed": 0, "max_samples": 10, "epochs": 1},
            finetune_config=finetune,
        )
        assert baseline.is_pretrained
        assert set(comparison.accuracies) == {"MOMENT"}

    def test_few_shot_returns_one_comparison_per_ratio(self, protocol_setup):
        model, datasets, finetune, _ = protocol_setup
        results = run_protocol(
            model,
            datasets,
            protocol="few_shot",
            ratios=(0.5,),
            finetune_config=finetune,
        )
        assert set(results) == {0.5}
        assert "AimTS" in results[0.5].accuracies

    def test_unknown_protocol_rejected(self, protocol_setup):
        model, datasets, _, _ = protocol_setup
        with pytest.raises(ValueError, match="unknown protocol"):
            run_protocol(model, datasets, protocol="zero_shot")

    def test_misdirected_arguments_rejected(self, protocol_setup):
        model, datasets, _, _ = protocol_setup
        with pytest.raises(ValueError, match="ratios"):
            run_protocol(model, datasets, protocol="few_shot", label_ratio=0.1)
        with pytest.raises(ValueError, match="corpus name"):
            run_protocol(
                model,
                datasets,
                protocol="multi_source",
                pretrain_corpus=datasets,
                pretrain_kwargs={"n_datasets": 2},
            )

    def test_archive_resolvable_by_name(self, protocol_setup):
        _, _, finetune, _ = protocol_setup
        comparison = run_protocol("linear", "ucr", finetune_config=finetune)
        assert len(comparison.accuracies["Linear"]) > 0

    def test_legacy_fit_and_evaluate_only_objects_still_supported(self, protocol_setup):
        """Duck-typed baselines exposing only fit_and_evaluate(dataset) keep working."""
        _, datasets, finetune, _ = protocol_setup

        class ConstantBaseline:
            name = "Constant"

            def fit_and_evaluate(self, dataset):
                return 0.5

        comparison = run_protocol(ConstantBaseline(), datasets, finetune_config=finetune)
        assert all(v == 0.5 for v in comparison.accuracies["Constant"].values())
        # ...but they cannot silently ignore a few-shot label_ratio
        with pytest.raises(TypeError, match="cannot honour label_ratio"):
            run_protocol(
                ConstantBaseline(), datasets, protocol="few_shot", ratios=(0.5,)
            )

    def test_old_contract_pretrain_duck_types_still_pretrained_case_by_case(
        self, protocol_setup
    ):
        """Objects with pretrain+fine_tune but no supports_pretraining attr count as pretrainable."""
        _, datasets, finetune, _ = protocol_setup
        calls = []

        class OldContract:
            name = "Old"

            def pretrain(self, X, *, epochs=None):
                calls.append("pretrain")

            def fine_tune(self, dataset, config=None, *, label_ratio=None):
                from repro.core.finetuner import FineTuneResult

                return FineTuneResult(dataset.name, 0.5, 0.5, 1, 0.0)

        run_case_by_case_comparison(
            _FakePretrainedAimTS(), {"Old": OldContract()}, datasets, finetune_config=finetune
        )
        assert calls == ["pretrain"] * len(datasets)
