"""Serving demo: the async micro-batching front door over a saved bundle.

The tour:

1. train a small AimTS estimator and save a full-bundle checkpoint,
2. stand up a :class:`repro.serving.ModelServer` on the bundle with one
   ``serve()`` call (Conv→BN pairs fold at load time),
3. fire concurrent single-sample ``predict`` / ``predict_proba`` / ``encode``
   requests at it from several threads — the scheduler coalesces them into
   fused micro-batches (flush on ``max_batch`` or ``max_wait_ms``),
4. check every response is bitwise identical to calling the estimator
   directly (the batch-invariant serving contract),
5. hot-reload a second bundle mid-stream without dropping a request,
6. read the server's counters (batches, flush triggers, mean batch size).

Run with:  PYTHONPATH=src python examples/serve.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

import numpy as np

from repro import load_estimator, make_estimator, serve
from repro.core import FineTuneConfig
from repro.data import load_dataset


def train_bundle(path: Path, *, seed: int) -> Path:
    dataset = load_dataset("ECG200", seed=seed)
    model = make_estimator(
        "aimts",
        repr_dim=16,
        hidden_channels=8,
        depth=1,
        panel_size=16,
        series_length=dataset.length,
        epochs=1,
        batch_size=16,
        seed=seed,
    )
    model.pretrain(dataset.train.X[:24])
    model.fine_tune(dataset, FineTuneConfig(epochs=1, batch_size=16, seed=seed))
    return model.save(path)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_serve_"))
    print("== training two small bundles (v1 for serving, v2 for hot reload) ==")
    bundle_v1 = train_bundle(workdir / "model_v1", seed=0)
    bundle_v2 = train_bundle(workdir / "model_v2", seed=1)

    dataset = load_dataset("ECG200", seed=0)
    samples = list(dataset.test.X[:32])  # each (M, T) — one request each

    # Direct answers for the bit-identity check (eval_mode folds Conv→BN,
    # exactly what the server does at load time).
    reference = load_estimator(bundle_v1, eval_mode=True)
    direct = {
        "predict": reference.predict(np.stack(samples)),
        "predict_proba": reference.predict_proba(np.stack(samples)),
        "encode": reference.encode(np.stack(samples)),
    }

    print("== serving ==")
    server = serve(bundle_v1, max_batch=16, max_wait_ms=2.0)
    try:
        # -------------------------------------------------- concurrent clients
        futures = {op: [None] * len(samples) for op in direct}

        def client(op: str) -> None:
            for index, sample in enumerate(samples):
                futures[op][index] = server.submit(sample, op=op)

        threads = [threading.Thread(target=client, args=(op,)) for op in direct]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        labels = np.array([f.result() for f in futures["predict"]])
        probas = np.stack([f.result() for f in futures["predict_proba"]])
        reprs = np.stack([f.result() for f in futures["encode"]])

        assert np.array_equal(labels, direct["predict"])
        assert np.array_equal(probas, direct["predict_proba"])
        assert np.array_equal(reprs, direct["encode"])
        print(f"   {3 * len(samples)} micro-batched responses, all bitwise "
              "identical to direct calls")

        # ------------------------------------------------------- hot reload
        in_flight = [server.submit(sample, op="predict") for sample in samples]
        server.reload(bundle_v2)  # atomic swap; nothing in flight is dropped
        answered = sum(f.result() is not None for f in in_flight)
        print(f"   reload mid-stream: {answered}/{len(in_flight)} in-flight "
              "requests answered")

        v2_labels = np.array(
            [server.submit(s, op="predict").result() for s in samples]
        )
        v2_direct = load_estimator(bundle_v2, eval_mode=True).predict(np.stack(samples))
        assert np.array_equal(v2_labels, v2_direct)
        print("   post-reload responses match the v2 bundle")

        stats = server.stats()
        print("== stats ==")
        for key in ("requests", "batches", "size_flushes", "deadline_flushes",
                    "mean_batch_size", "model_version"):
            if key in stats:
                print(f"   {key}: {stats[key]}")
    finally:
        server.close()  # drains the queue; also registered via atexit
    print("done.")


if __name__ == "__main__":
    main()
