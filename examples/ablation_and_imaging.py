"""Anatomy of AimTS: inspecting each objective and design choice on one batch.

This example does not train to convergence; it dissects the framework on one
mini-batch so the individual pieces of the method (paper Section IV) are easy
to see and experiment with:

* the augmentation bank and the two view sets (Fig. 4a),
* prototype aggregation and the adaptive temperatures (Eqs. 2-3),
* the intra-/inter-prototype losses (Eqs. 4-6),
* the line-chart imaging and the series-image losses with and without the
  geodesic mixup (Eqs. 7-12),
* how the ablation switches in ``AimTSConfig`` map to Table VI rows.

Run with:  python examples/ablation_and_imaging.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AimTSConfig, AimTSPretrainer
from repro.core.prototypes import adaptive_temperatures, pairwise_view_distances
from repro.data import load_pretraining_corpus
from repro.data.loaders import build_pretraining_pool
from repro.utils.seeding import seed_everything
from repro.utils.tables import ResultTable


def main() -> None:
    seed_everything(3407)
    corpus = load_pretraining_corpus("monash", n_datasets=6)
    pool = build_pretraining_pool(corpus, length=64, n_variables=1, max_samples=64)
    batch = pool[:12]
    print(f"One pre-training batch: {batch.shape} (batch, variables, time steps)")

    # ---------------------------------------------------------- view generation
    config = AimTSConfig(repr_dim=24, proj_dim=12, hidden_channels=12, depth=2, series_length=64, panel_size=24, batch_size=12, epochs=1)
    pretrainer = AimTSPretrainer(config)
    views_a, views_b = pretrainer.bank.two_views(batch)
    print(f"Augmentation bank {pretrainer.bank.names} -> two view sets of shape {views_a.shape}")

    # ------------------------------------------------------ adaptive temperatures
    distances = pairwise_view_distances(views_a)
    temperatures = adaptive_temperatures(distances, tau0=config.tau0)
    table = ResultTable(
        ["view pair"] + pretrainer.bank.names,
        title="Adaptive temperatures for sample 0 (rows: anchor augmentation)",
        float_format="{:.3f}",
    )
    for row_index, row_name in enumerate(pretrainer.bank.names):
        table.add_row([row_name] + list(temperatures[0, row_index]))
    print()
    print(table.render())
    print("Diagonal entries equal tau0 (positive pairs); distant view pairs get higher temperatures.\n")

    # ------------------------------------------------------------ loss components
    loss_table = ResultTable(["Configuration (Table VI row)", "Batch loss"], title="Loss components on this batch")
    variants = {
        "w/ inter-prototype only": dict(use_series_image_loss=False, use_intra_loss=False),
        "w/ prototype-based (inter+intra)": dict(use_series_image_loss=False, use_intra_loss=True),
        "w/ naive series-image": dict(use_prototype_loss=False, mixup_mode="none"),
        "w/ series-image (naive+mixup)": dict(use_prototype_loss=False, mixup_mode="geodesic"),
        "full AimTS": dict(),
    }
    for name, overrides in variants.items():
        seed_everything(3407)
        variant = AimTSPretrainer(AimTSConfig(repr_dim=24, proj_dim=12, hidden_channels=12, depth=2, series_length=64, panel_size=24, batch_size=12, epochs=1, **overrides))
        losses = variant.compute_batch_loss(batch)
        loss_table.add_row([name, float(losses["total"].item())])
    print(loss_table.render())

    # --------------------------------------------------------------- image branch
    images = pretrainer.renderer.render_batch(batch[:2])
    print(
        f"\nImaging: 2 samples render to images of shape {images.shape}; "
        f"values in [{images.min():.2f}, {images.max():.2f}]"
    )
    representations = pretrainer.image_encoder(images)
    print(f"Image encoder output: {representations.shape} -> projected to {pretrainer.image_projection(representations).shape}")

    # ----------------------------------------------------------- one training step
    before = [p.data.copy() for p in pretrainer.parameters()]
    pretrainer.fit(batch, verbose=True)
    after = list(pretrainer.parameters())
    changed = sum(int(not np.allclose(b, a.data)) for b, a in zip(before, after))
    print(f"\nAfter one epoch on this batch, {changed}/{len(after)} parameter tensors changed.")
    if pretrainer.render_cache is not None:
        stats = pretrainer.render_cache.stats()
        print(
            f"Render cache: {stats['entries']} images "
            f"({stats['nbytes'] / 1024:.0f} KiB), hit rate {stats['hit_rate']:.0%} — "
            "the pool is rasterised once and every epoch reuses the cached images."
        )


if __name__ == "__main__":
    main()
