"""Chaos demo: crash the training pipeline on purpose and watch it heal.

The tour:

1. pre-train a small AimTS model with the producer/worker pipeline enabled
   and record its loss curves — this is the no-fault reference,
2. sample a deterministic :class:`repro.utils.faults.FaultPlan` from a seed
   (each fault is a ``(site, invocation_index)`` pair that raises exactly
   once, fused so a respawned process does not re-fire it),
3. rerun the identical pre-train with the plan armed and a
   :class:`repro.engine.RestartPolicy` attached — producers and gradient
   workers that crash are respawned with jittered exponential backoff and
   the lost steps are replayed from their step-keyed seeds,
4. assert the recovered loss curves are **bit-identical** to the reference
   (``==`` on float64 tuples, not ``allclose``), and print the restart /
   replay counters from the trainer's pipeline summary.

This script doubles as the randomized stress probe for the chaos workflow
(``.github/workflows/chaos.yml``): each workflow iteration passes a fresh
``--fault-seed`` so the faults land on different sites and steps every run,
while the recovery contract stays the same.  Exit code is non-zero when the
recovered curve diverges.

Run with:  PYTHONPATH=src python examples/chaos_pretrain.py [--fault-seed N]
"""

from __future__ import annotations

import argparse
import sys
import tempfile

import numpy as np

from repro.core import AimTSConfig
from repro.core.pretrainer import AimTSPretrainer
from repro.engine import RestartPolicy
from repro.utils import faults
from repro.utils.faults import FaultPlan

#: the two pipeline arms the stress probe exercises — producers require the
#: sequential gradient path (n_workers=1) and sharded workers require the
#: inline batch path (n_producers=0), so each arm samples faults from its
#: own site.  Serving / corpus / spill sites have their own tests in
#: tests/test_reliability.py and no pipeline to exercise here.
ARMS = (
    ("producer", "producer.step", dict(n_producers=1, prefetch_depth=2)),
    ("worker", "worker.reduce", dict(n_workers=2)),
)


def pretrain_curves(pool: np.ndarray, *, heal: bool, **knobs) -> tuple:
    model = AimTSPretrainer(
        AimTSConfig(
            repr_dim=16,
            proj_dim=8,
            hidden_channels=8,
            depth=1,
            panel_size=16,
            series_length=pool.shape[-1],
            batch_size=8,
            epochs=3,
            seed=0,
            **knobs,
        )
    )
    if heal:
        model.restart_policy = RestartPolicy(max_restarts=3, seed=0)
    history = model.fit(pool)
    summary = model.trainer.pipeline_summary()
    if model._worker_pool is not None:
        summary = dict(summary, restarts=model._worker_pool.restart_count)
    model.shutdown_workers()
    curves = (
        tuple(history.total_loss),
        tuple(history.prototype_loss),
        tuple(history.series_image_loss),
    )
    return curves, summary


def run_arm(name, site, knobs, pool, *, fault_seed, n_faults) -> bool:
    print(f"== {name} arm: no-fault reference run ==")
    reference, _ = pretrain_curves(pool, heal=False, **knobs)
    print(f"   total-loss curve: {[round(v, 6) for v in reference[0]]}")

    with tempfile.TemporaryDirectory() as scratch:
        plan = FaultPlan.sample(
            [site], seed=fault_seed, n_faults=n_faults, max_index=4,
            scratch_dir=scratch,
        )
        print(f"== {name} arm: chaos run (fault seed {fault_seed}) ==")
        for fault_site, index in plan.pairs():
            print(f"   will crash {fault_site} on invocation {index}")
        with faults.armed(plan):
            healed, summary = pretrain_curves(pool, heal=True, **knobs)

    identical = healed == reference
    print(
        f"   restarts: {summary['restarts']}, "
        f"replayed steps: {summary.get('replayed_steps', 0)}"
    )
    print(f"   recovered curve bit-identical to reference: {identical}\n")
    return identical


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for FaultPlan.sample — each seed crashes different steps",
    )
    parser.add_argument(
        "--n-faults",
        type=int,
        default=2,
        help="how many (site, invocation) faults to inject per arm (default 2)",
    )
    args = parser.parse_args(argv)

    pool = np.random.default_rng(0).normal(size=(32, 1, 64))
    diverged = [
        name
        for name, site, knobs in ARMS
        if not run_arm(
            name, site, knobs, pool,
            fault_seed=args.fault_seed, n_faults=args.n_faults,
        )
    ]
    if diverged:
        print(
            f"DIVERGED in {', '.join(diverged)} arm(s) — recovery broke the "
            "determinism contract",
            file=sys.stderr,
        )
        return 1
    print("all arms recovered bit-identically")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
