"""Quickstart: pre-train AimTS on a multi-source corpus and fine-tune it downstream.

This is the 5-minute tour of the library:

1. load an unlabeled multi-source pre-training corpus (Monash-style),
2. pre-train AimTS with its two contrastive objectives,
3. fine-tune the pre-trained TS encoder on a small labelled downstream dataset
   (an ECG200-style two-class problem) and report test accuracy,
4. compare against training the same architecture from scratch,
5. save and reload the pre-trained checkpoint.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
import time

from repro import AimTS, AimTSConfig, FineTuneConfig
from repro.core.finetuner import FineTuner
from repro.data import load_dataset, load_pretraining_corpus
from repro.encoders import TSEncoder
from repro.utils.seeding import seed_everything


def main() -> None:
    seed_everything(3407)

    # ------------------------------------------------------------------ 1. data
    corpus = load_pretraining_corpus("monash", n_datasets=10)
    print(f"Pre-training corpus: {len(corpus)} unlabeled datasets "
          f"({sum(len(d.train) for d in corpus)} series in total)")

    # --------------------------------------------------------------- 2. pretrain
    config = AimTSConfig(
        repr_dim=24,
        proj_dim=12,
        hidden_channels=12,
        depth=2,
        series_length=64,
        panel_size=24,
        batch_size=12,
        epochs=2,           # the paper pre-trains for 2 epochs as well
    )
    model = AimTS(config)
    start = time.perf_counter()
    history = model.pretrain(corpus, max_samples=160, verbose=True)
    print(f"Pre-training finished in {time.perf_counter() - start:.1f}s; "
          f"final loss {history.total_loss[-1]:.4f}")

    # --------------------------------------------------------------- 3. finetune
    downstream = load_dataset("ECG200")
    print(f"\nDownstream dataset: {downstream.describe()}")
    finetune_config = FineTuneConfig(epochs=20, learning_rate=3e-3)
    result = model.fine_tune(downstream, finetune_config)
    print(f"AimTS (multi-source pre-trained) test accuracy: {result.accuracy:.3f}")

    # ------------------------------------------------- 4. from-scratch comparison
    scratch_encoder = TSEncoder(hidden_channels=12, repr_dim=24, depth=2, rng=3407)
    scratch = FineTuner(scratch_encoder, downstream.n_classes, finetune_config)
    scratch_result = scratch.fit_and_evaluate(downstream)
    print(f"Same architecture trained from scratch:        {scratch_result.accuracy:.3f}")

    # ------------------------------------------------------------- 5. checkpoint
    with tempfile.TemporaryDirectory() as tmp:
        path = model.save(f"{tmp}/aimts_checkpoint")
        restored = AimTS(config).load(path)
        restored_result = restored.fine_tune(downstream, finetune_config)
        print(f"Restored checkpoint reproduces fine-tuning:    {restored_result.accuracy:.3f}")


if __name__ == "__main__":
    main()
