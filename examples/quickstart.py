"""Quickstart: the Estimator API, the training engine, bundles, run_protocol.

This is the 5-minute tour of the library:

1. build AimTS from the component registry (``make_estimator``),
2. pre-train on an unlabeled multi-source corpus (Monash-style) with a
   mid-run ``Checkpointer``, then resume the run from its checkpoint
   bit-identically (what you would do after a killed job),
3. fine-tune on a small labelled downstream dataset — with engine
   ``EarlyStopping`` — and classify new series with ``predict`` /
   ``predict_proba`` directly on the facade,
4. save a full-bundle checkpoint and reconstruct a working estimator from it
   with ``load_estimator`` (no config or class needed at load time),
5. compare against baselines on a whole archive with one ``run_protocol``
   call.

Run with:  PYTHONPATH=src python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from repro import load_estimator, make_estimator
from repro.core import FineTuneConfig
from repro.data import load_dataset, load_pretraining_corpus
from repro.engine import Checkpointer, EarlyStopping
from repro.evaluation import run_protocol
from repro.utils.seeding import seed_everything

AIMTS_SPEC = dict(
    repr_dim=24,
    proj_dim=12,
    hidden_channels=12,
    depth=2,
    series_length=64,
    panel_size=24,
    batch_size=12,
    epochs=2,               # the paper pre-trains for 2 epochs as well
)


def main() -> None:
    seed_everything(3407)

    # ------------------------------------------------------- 1. registry
    # every model in the repo is constructible from a string + overrides;
    # config-dataclass fields and constructor keywords are routed automatically
    model = make_estimator("aimts", **AIMTS_SPEC)

    # ------------------------------------------------------- 2. pretrain + resume
    corpus = load_pretraining_corpus("monash", n_datasets=10)
    print(f"Pre-training corpus: {len(corpus)} unlabeled datasets "
          f"({sum(len(d.train) for d in corpus)} series in total)")
    with tempfile.TemporaryDirectory() as tmp:
        # a Checkpointer writes a resumable engine checkpoint after every epoch:
        # weights, Adam moments, scheduler step and all RNG streams
        start = time.perf_counter()
        history = model.pretrain(
            corpus, max_samples=160, verbose=True,
            callbacks=[Checkpointer(f"{tmp}/pretrain_ck")],
        )
        print(f"Pre-training finished in {time.perf_counter() - start:.1f}s; "
              f"final loss {history.total_loss[-1]:.4f}")

        # simulate a killed job: a *fresh* model resumes from the checkpoint and
        # continues to 3 total epochs — epochs 1-2 are restored, epoch 3 runs
        seed_everything(3407)
        resumed = make_estimator("aimts", **AIMTS_SPEC)
        resumed_history = resumed.pretrain(
            load_pretraining_corpus("monash", n_datasets=10),
            max_samples=160, epochs=3, resume_from=f"{tmp}/pretrain_ck",
        )
        print(f"Resumed run: {len(resumed_history.total_loss)} epochs recorded, "
              f"epochs 1-2 identical to the first run: "
              f"{resumed_history.total_loss[:2] == history.total_loss[:2]}")

    # ------------------------------------------------------- 3. finetune + predict
    downstream = load_dataset("ECG200")
    print(f"\nDownstream dataset: {downstream.describe()}")
    finetune_config = FineTuneConfig(epochs=20, learning_rate=3e-3)
    result = model.fine_tune(downstream, finetune_config)
    print(f"AimTS (multi-source pre-trained) test accuracy: {result.accuracy:.3f} "
          f"({result.n_epochs} epochs)")

    # EarlyStopping watches the engine's epoch logs, so a generous 40-epoch
    # budget stops as soon as the loss plateaus
    budget = FineTuneConfig(epochs=40, learning_rate=3e-3)
    finetuner = model.make_finetuner(downstream.n_classes, budget)
    curve = finetuner.fit(
        downstream.train, callbacks=[EarlyStopping("loss", patience=3, min_delta=1e-3)]
    )
    print(f"Early-stopped fine-tune: {len(curve)}/{budget.epochs} epochs, "
          f"final loss {curve.last()['loss']:.4f}")

    # batch inference straight on the facade — no FineTuner internals needed
    new_series = downstream.test.X[:5]
    print(f"predict:        {model.predict(new_series)}")
    print(f"predict_proba:  {np.round(model.predict_proba(new_series), 3).tolist()}")

    # ------------------------------------------------------- 4. full-bundle checkpoint
    with tempfile.TemporaryDirectory() as tmp:
        path = model.save(f"{tmp}/aimts_checkpoint")
        # the bundle stores the config, encoders, fine-tuned classifier and
        # label map, so the estimator comes back whole from the path alone
        restored = load_estimator(path)
        identical = np.array_equal(
            restored.predict(downstream.test.X), model.predict(downstream.test.X)
        )
        print(f"Restored bundle predicts identically:          {identical}")

    # ------------------------------------------------------- 5. one-call archive protocol
    comparison = run_protocol(
        {"AimTS": model, "Rocket": "rocket", "Linear": "linear"},
        [downstream],
        protocol="multi_source",
        finetune_config=finetune_config,
    )
    for method, accuracies in comparison.accuracies.items():
        print(f"{method:>8s}: {accuracies[downstream.name]:.3f}")
    print(f"Best method: {comparison.best_method()}")


if __name__ == "__main__":
    main()
