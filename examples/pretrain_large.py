"""Out-of-core pre-training demo: sharded corpora + the disk-spill render cache.

The tour:

1. stream a synthetic multi-family corpus to disk with
   :func:`repro.data.build_synthetic_corpus` (bounded memory: one generation
   block + one shard buffer, regardless of corpus size),
2. open it as a :class:`repro.data.ShardedCorpus` — zero-copy ``np.memmap``
   views plus a checksum ``verify()`` pass,
3. show the determinism contract: rebuilding with a different shard size is
   byte-identical (generation is chunked by ``block_size``, not shard size),
4. pre-train straight from disk: ``AimTSPretrainer.fit(corpus)`` streams
   shard-aware shuffled mini-batches, and a render cache whose RAM budget is
   far smaller than the rendered image set spills evicted renders to disk —
   each deterministic image is rasterised exactly once across all epochs,
5. read back the cache's spill-tier counters.

The same corpus directory is also scriptable from the shell::

    python -m repro.data.corpus build --out /tmp/corpus --n-samples 100000
    python -m repro.data.corpus inspect /tmp/corpus
    python -m repro.data.corpus verify /tmp/corpus

Run with:  PYTHONPATH=src python examples/pretrain_large.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import AimTSConfig, AimTSPretrainer
from repro.data import build_synthetic_corpus

N_SAMPLES = 8_192
SERIES_LENGTH = 96
EPOCHS = 2


def build_corpus(root: Path):
    print(f"=== building a {N_SAMPLES}-sample corpus on disk ===")
    start = time.perf_counter()
    corpus = build_synthetic_corpus(
        root / "corpus",
        ["ecg", "motion", "device"],
        N_SAMPLES,
        length=SERIES_LENGTH,
        shard_size=2048,
        seed=3407,
    )
    elapsed = time.perf_counter() - start
    print(
        f"built {len(corpus)} samples x {corpus.sample_shape} in "
        f"{corpus.n_shards} shards ({corpus.nbytes / 1e6:.0f} MB) "
        f"[{elapsed:.1f}s, {len(corpus) / elapsed:.0f} samples/s]"
    )
    assert corpus.verify() == [], "checksum verification failed"
    print("verify(): every shard matches its manifest checksum")
    return corpus


def show_determinism(root: Path, corpus):
    print("\n=== shard layout never changes the bytes ===")
    other = build_synthetic_corpus(
        root / "other_layout",
        ["ecg", "motion", "device"],
        N_SAMPLES,
        length=SERIES_LENGTH,
        shard_size=500,  # completely different file layout
        seed=3407,
    )
    assert other.n_shards != corpus.n_shards
    probe = np.random.default_rng(0).choice(N_SAMPLES, size=256, replace=False)
    assert np.array_equal(corpus.gather(probe), other.gather(probe))
    print(
        f"{corpus.n_shards}-shard and {other.n_shards}-shard builds are "
        "sample-for-sample byte-identical"
    )


def pretrain_from_disk(root: Path, corpus):
    print("\n=== pre-training straight from disk ===")
    config = AimTSConfig(
        repr_dim=16,
        proj_dim=8,
        hidden_channels=8,
        depth=1,
        panel_size=24,
        series_length=SERIES_LENGTH,
        batch_size=64,
        epochs=EPOCHS,
        seed=3407,
        compute_dtype="float32",
        image_dtype="float32",
        use_prototype_loss=False,  # the series-image arm drives the cache
        cache_max_bytes=16 * 1024 * 1024,  # far below the rendered image set
        cache_spill_dir=str(root / "spill"),
    )
    pretrainer = AimTSPretrainer(config)
    image_set_mb = N_SAMPLES * pretrainer.renderer.image_nbytes(1) / 1e6
    print(
        f"render cache: {config.cache_max_bytes / 1e6:.0f} MB RAM budget vs a "
        f"{image_set_mb:.0f} MB image set -> evictions spill to disk"
    )
    start = time.perf_counter()
    history = pretrainer.fit(corpus)
    elapsed = time.perf_counter() - start
    print(
        f"{EPOCHS} epochs over {N_SAMPLES} samples in {elapsed:.1f}s "
        f"({N_SAMPLES * EPOCHS / elapsed:.0f} samples/s), "
        f"final loss {history.total_loss[-1]:.4f}"
    )

    stats = pretrainer.render_cache.stats()
    print("\nrender cache after the run:")
    for key in (
        "rendered_samples",
        "hits",
        "disk_hits",
        "spill_entries",
        "spilled_bytes",
        "readback_failures",
    ):
        print(f"  {key:18} {stats[key]}")
    assert stats["rendered_samples"] == N_SAMPLES, "render-once violated"
    print(
        f"each of the {N_SAMPLES} samples was rasterised exactly once across "
        f"{EPOCHS} epochs; later lookups were RAM hits or validated disk hits"
    )
    return pretrainer


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        corpus = build_corpus(root)
        show_determinism(root, corpus)
        pretrain_from_disk(root, corpus)


if __name__ == "__main__":
    main()
