"""Few-shot classification of medical time series (the paper's motivating scenario).

The introduction of the AimTS paper motivates multi-source pre-training with
label-scarce medical data: interpreting an epilepsy EEG or an ECG requires an
expert, so downstream training sets are tiny.  This example:

1. pre-trains AimTS once on a multi-source corpus that contains **no**
   medical data from the downstream tasks,
2. fine-tunes on ECG200-style and Epilepsy-style datasets using only 5 %,
   15 % and 20 % of the training labels (the Table V protocol),
3. compares against a MOMENT-style masked-reconstruction foundation model
   pre-trained on exactly the same corpus.

Run with:  python examples/fewshot_medical.py
"""

from __future__ import annotations

from repro import AimTS, AimTSConfig, FineTuneConfig
from repro.baselines import BaselineConfig, MomentLike
from repro.data import load_dataset, load_pretraining_corpus
from repro.utils.seeding import seed_everything
from repro.utils.tables import ResultTable

LABEL_RATIOS = (0.05, 0.15, 0.20)
MEDICAL_DATASETS = ("ECG200", "Epilepsy")


def main() -> None:
    seed_everything(3407)
    corpus = load_pretraining_corpus("monash", n_datasets=10)

    print("Pre-training AimTS on the multi-source corpus ...")
    aimts = AimTS(
        AimTSConfig(repr_dim=24, proj_dim=12, hidden_channels=12, depth=2, series_length=64, panel_size=24, batch_size=12, epochs=2)
    )
    aimts.pretrain(corpus, max_samples=160)

    print("Pre-training the MOMENT-style baseline on the same corpus ...")
    moment = MomentLike(
        BaselineConfig(repr_dim=24, proj_dim=12, hidden_channels=12, depth=2, series_length=64, batch_size=12, epochs=2)
    )
    moment.pretrain_multi_source(corpus, max_samples=160)

    finetune = FineTuneConfig(epochs=20, learning_rate=3e-3)
    table = ResultTable(
        ["Dataset", "Label ratio", "AimTS", "MOMENT-like", "Few-shot train size"],
        title="Few-shot learning on label-scarce medical datasets",
    )
    for name in MEDICAL_DATASETS:
        dataset = load_dataset(name)
        for ratio in LABEL_RATIOS:
            aimts_accuracy = aimts.fine_tune(dataset, finetune, label_ratio=ratio).accuracy
            moment_accuracy = moment.fine_tune(dataset, finetune, label_ratio=ratio).accuracy
            from repro.data import few_shot_subset

            n_labels = len(few_shot_subset(dataset.train, ratio, seed=3407))
            table.add_row([name, f"{int(ratio * 100)}%", aimts_accuracy, moment_accuracy, n_labels])

    print()
    print(table.render())
    print(
        "\nExpected shape (cf. Table V of the paper): AimTS stays usable even at 5 % labels\n"
        "and is consistently at least as accurate as the masked-reconstruction baseline."
    )


if __name__ == "__main__":
    main()
