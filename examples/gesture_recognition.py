"""Action / gesture recognition with multivariate accelerometer-style data.

The paper's first motivating domain is action recognition.  This example uses
the multivariate gesture-style datasets (uWave / RacketSports analogues) to
show the parts of the pipeline that matter for multivariate data:

1. channel-independent encoding — one pre-trained encoder works for datasets
   with any number of variables,
2. the series-to-image conversion — each variable becomes a coloured panel of
   one stitched line-chart image,
3. fine-tuning on two gesture datasets with different channel counts from the
   same pre-trained checkpoint,
4. inspecting the learned representation space (nearest-centroid accuracy).

Run with:  python examples/gesture_recognition.py
"""

from __future__ import annotations

import numpy as np

from repro import AimTS, AimTSConfig, FineTuneConfig
from repro.data import load_dataset, load_pretraining_corpus
from repro.imaging import LineChartRenderer
from repro.utils.seeding import seed_everything
from repro.utils.tables import ResultTable


def nearest_centroid_accuracy(representations: np.ndarray, labels: np.ndarray) -> float:
    """Leave-nothing-out nearest-centroid accuracy in representation space."""
    centroids = {label: representations[labels == label].mean(axis=0) for label in np.unique(labels)}
    classes = sorted(centroids)
    distance_matrix = np.stack(
        [np.linalg.norm(representations - centroids[label], axis=1) for label in classes], axis=1
    )
    predictions = np.array(classes)[distance_matrix.argmin(axis=1)]
    return float((predictions == labels).mean())


def main() -> None:
    seed_everything(3407)

    # -------------------------------------------------------------- pre-training
    corpus = load_pretraining_corpus("monash", n_datasets=10)
    model = AimTS(
        AimTSConfig(repr_dim=24, proj_dim=12, hidden_channels=12, depth=2, series_length=64, panel_size=24, batch_size=12, epochs=2)
    )
    model.pretrain(corpus, max_samples=160, verbose=True)

    # ------------------------------------------------- series-to-image inspection
    gesture = load_dataset("UWaveGestureLibrary")   # 3-axis accelerometer-style data
    renderer = LineChartRenderer(panel_size=24)
    image = renderer.render(gesture.train.X[0])
    print(
        f"\nOne {gesture.n_variables}-variable gesture sample renders to an RGB image of shape "
        f"{image.shape} (grid of per-variable panels, lit pixel fraction "
        f"{float((image.sum(axis=0) > 0).mean()):.2%})"
    )

    # ------------------------------------------------------ downstream fine-tuning
    finetune = FineTuneConfig(epochs=20, learning_rate=3e-3)
    table = ResultTable(
        ["Dataset", "Variables", "Classes", "Fine-tuned accuracy", "Nearest-centroid (pre-trained reps)"],
        title="Gesture recognition from one pre-trained AimTS checkpoint",
    )
    for name in ("UWaveGestureLibrary", "RacketSports", "Handwriting"):
        dataset = load_dataset(name)
        result = model.fine_tune(dataset, finetune)
        representations = model.encode(dataset.test.X)
        centroid_accuracy = nearest_centroid_accuracy(representations, dataset.test.y)
        table.add_row([name, dataset.n_variables, dataset.n_classes, result.accuracy, centroid_accuracy])

    print()
    print(table.render())
    print(
        "\nThe same checkpoint adapts to gesture datasets with different channel counts\n"
        "because the TS encoder is channel independent (paper Section V-A3)."
    )


if __name__ == "__main__":
    main()
